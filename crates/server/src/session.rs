//! One tenant's stream: window + refresh worker + optional journal.
//!
//! A [`StreamSession`] is the unit of multi-tenancy. Its mutable ingest
//! state (window, worker handle, journal) sits behind one mutex taken by
//! writers — `EVENT`, `BATCH`, `SYNC`, `DROP` — while the *read path* goes
//! straight to the shared [`SnapshotCell`]: `QUERY` clones the latest
//! published `Arc<PatternSnapshot>` and never touches the ingest lock, so
//! queries cannot block ingestion (and ingestion cannot block queries
//! beyond the cell's pointer swap).
//!
//! # Recovery by replay
//!
//! A durable session whose WAL directory already exists is rebuilt with
//! [`stream::durable::replay`] *before* it goes live: the recovered window
//! carries the same contents, watermark and ingest counters the pre-crash
//! window had over the durable prefix, and the journal then resumes in a
//! fresh segment after the sealed ones. An initial refresh is submitted so
//! the first `QUERY` after recovery already sees the recovered patterns.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use interval_core::wire::{CreateSpec, SupportSpec};
use interval_core::{MiningBudget, StreamEvent, Time};
use parking_lot::Mutex;
use segment::{SegmentOptions, SegmentReader, SegmentStore};
use stream::{
    FrozenView, IncrementalMiner, Journal, JournalStats, PatternSnapshot, PipelineStats,
    RefreshJob, RefreshWorker, SlidingWindowDatabase, SnapshotCell, SnapshotSubscriber,
};
use tpminer::MinerConfig;

use crate::{ServerConfig, StreamDrain};

/// How long [`StreamSession::sync`] waits for the worker before deciding
/// it is unresponsive (a dead worker never completes its epoch).
const SYNC_POLL: Duration = Duration::from_millis(1);
const SYNC_POLL_LIMIT: u32 = 30_000;

/// Wall-clock budget for one `HISTORY` request, so a huge cold range
/// cannot pin a connection thread forever.
const HISTORY_DEADLINE: Duration = Duration::from_secs(30);

/// What `CREATE` found when it opened the session.
#[derive(Debug, Clone, Default)]
pub struct CreateOutcome {
    /// Whether the session journals to a WAL directory.
    pub durable: bool,
    /// Events replayed from a pre-existing WAL (0 for a fresh stream).
    pub recovered_events: u64,
    /// Records that decoded but were refused by ingest semantics on replay.
    pub recovered_rejected: u64,
    /// The recovered window's watermark, if any.
    pub recovered_watermark: Option<Time>,
    /// Whether the replayed log was corruption-free (torn tails are clean).
    pub replay_clean: bool,
}

/// The result of ingesting one event.
#[derive(Debug, Clone, Copy)]
pub struct IngestAck {
    /// Whether the window accepted the event.
    pub accepted: bool,
    /// Set exactly once, on the append that latched WAL degradation.
    pub degraded_now: bool,
}

/// One frequent pattern prepared for the wire: support + rendered form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryLine {
    /// Exact support in the snapshot's window.
    pub support: usize,
    /// The pattern in the same textual form the offline miner prints.
    pub pattern: String,
}

/// A consistent read served from one published snapshot.
#[derive(Debug, Clone)]
pub struct QueryReply {
    /// Snapshot revision the reply was computed from.
    pub revision: u64,
    /// The snapshot's watermark.
    pub watermark: Option<Time>,
    /// Sequences in the mined window.
    pub sequences: usize,
    /// Matching patterns, sorted by descending support then pattern text.
    pub lines: Vec<QueryLine>,
}

/// Point-in-time statistics for one stream.
#[derive(Debug, Clone)]
pub struct SessionStats {
    /// Stream name.
    pub name: String,
    /// Events accepted since creation (including replayed ones).
    pub events: u64,
    /// Watermarks observed.
    pub watermarks: u64,
    /// Sequences currently in the live window.
    pub sequences: usize,
    /// Open (unclosed) intervals in the live window.
    pub open_intervals: usize,
    /// Revision of the latest published snapshot.
    pub revision: u64,
    /// Patterns in the latest published snapshot.
    pub patterns: usize,
    /// Pipeline counters, with `refresh_lag` against the live watermark.
    pub pipeline: PipelineStats,
    /// Journal counters when the stream is durable.
    pub journal: Option<JournalStats>,
    /// `QUERY` requests served from this stream.
    pub queries: u64,
}

/// Mutable ingest-side state, behind the session mutex.
///
/// The worker handle is an `Arc` so the blocking paths — `SYNC`'s
/// wait-for-idle, `DROP`'s join — can clone it under a brief lock and
/// then block *without* the lock. Holding the ingest mutex across a
/// channel send or a thread join is this codebase's deadlock shape, and
/// `xlint`'s `lock-discipline` rule rejects it.
struct Ingest {
    window: SlidingWindowDatabase,
    worker: Option<Arc<RefreshWorker>>,
    journal: Option<Journal>,
    store: Option<SegmentStore>,
    support: SupportSpec,
    refresh_every: u64,
    max_lag: Option<Time>,
    watermarks: u64,
    events: u64,
}

/// One named stream session. See the module docs for the locking story.
pub struct StreamSession {
    name: String,
    cell: Arc<SnapshotCell>,
    queries: AtomicU64,
    ingest: Mutex<Ingest>,
}

impl StreamSession {
    /// Opens (or recovers) a session per the `CREATE` spec. Fails when the
    /// spec asks for a WAL but the server has no `wal_root`, or when the
    /// WAL directory cannot be opened/replayed.
    pub fn open(
        name: &str,
        spec: &CreateSpec,
        config: &ServerConfig,
    ) -> Result<(Arc<StreamSession>, CreateOutcome), String> {
        let mut outcome = CreateOutcome {
            replay_clean: true,
            ..CreateOutcome::default()
        };
        let mut window = SlidingWindowDatabase::new(spec.window);
        let mut journal = None;
        if spec.durable {
            let root = config.wal_root.as_ref().ok_or_else(|| {
                "stream asked for WAL but the server has no --wal-root".to_owned()
            })?;
            let dir = root.join(name);
            if dir.is_dir() {
                let replayed = stream::durable::replay(&dir, spec.window)
                    .map_err(|e| format!("WAL replay for {name:?} failed: {e}"))?;
                outcome.recovered_events = replayed.report.records_replayed;
                outcome.recovered_rejected = replayed.records_rejected;
                outcome.recovered_watermark = replayed.window.watermark();
                outcome.replay_clean = replayed.report.is_clean();
                window = replayed.window;
            }
            journal = Some(
                Journal::open(&dir, spec.window, config.fsync)
                    .map_err(|e| format!("WAL open for {name:?} failed: {e}"))?,
            );
            outcome.durable = true;
        }
        let mut store = None;
        if let Some(root) = &config.segment_root {
            let opened = SegmentStore::open(root.join(name), SegmentOptions::default())
                .map_err(|e| format!("segment store for {name:?} failed: {e}"))?;
            // Keep watermark-evicted intervals so the ingest path can
            // spill them into the cold store instead of dropping them.
            window.retain_evicted(true);
            store = Some(opened);
        }

        let mut miner_config = MinerConfig::with_min_support(1);
        if let Some(k) = spec.max_arity {
            miner_config = miner_config.max_arity(k);
        }
        if let Some(g) = spec.max_gap {
            miner_config = miner_config.max_gap(g);
        }
        let cell = Arc::new(SnapshotCell::new());
        let miner = IncrementalMiner::new(miner_config, config.threads);
        let worker =
            RefreshWorker::spawn_pool(miner, Arc::clone(&cell), config.refresh_workers.max(1));

        let events = outcome
            .recovered_events
            .saturating_sub(outcome.recovered_rejected);
        let mut ingest = Ingest {
            window,
            worker: Some(Arc::new(worker)),
            journal,
            store,
            support: spec.support,
            refresh_every: spec.refresh_every.max(1),
            max_lag: config.max_lag,
            watermarks: 0,
            events,
        };
        // Publish the recovered state immediately: the first QUERY after a
        // recovery must not have to wait for new traffic to trigger a
        // refresh. No lock exists yet, so the blocking submit is safe here.
        if events > 0 {
            let job = freeze_job(&mut ingest);
            if let Some(worker) = &ingest.worker {
                worker.submit(job);
            }
        }
        let session = Arc::new(StreamSession {
            name: name.to_owned(),
            cell,
            queries: AtomicU64::new(0),
            ingest: Mutex::new(ingest),
        });
        Ok((session, outcome))
    }

    /// Stream name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ingests one event: journal first (write-ahead), then the window,
    /// then maybe a refresh trigger. `Err` carries the refusal reason; the
    /// session stays usable either way.
    pub fn ingest(&self, event: StreamEvent) -> Result<IngestAck, String> {
        // A due refresh is frozen under the lock but *submitted* after it
        // drops: `RefreshWorker::submit` can block on the one-deep job
        // queue, and blocking under the ingest lock would stall every
        // other writer (and trip `lock-discipline`).
        let mut deferred: Option<(Arc<RefreshWorker>, RefreshJob)> = None;
        let mut guard = self.ingest.lock();
        let ingest = &mut *guard;
        let mut degraded_now = false;
        if let Some(journal) = ingest.journal.as_mut() {
            let was_degraded = journal.is_degraded();
            if !journal.append(&event) && !was_degraded {
                degraded_now = true;
                if let Some(worker) = &ingest.worker {
                    worker.note_wal_degraded();
                }
            }
        }
        let is_watermark = matches!(event, StreamEvent::Watermark(_));
        ingest.window.ingest(event).map_err(|e| e.to_string())?;
        ingest.events += 1;
        if let Some(worker) = &ingest.worker {
            if worker.is_busy() {
                worker.note_events_during_refresh(1);
            }
        }
        if is_watermark {
            ingest.watermarks += 1;
            if let Some(cutoff) = ingest.window.cutoff() {
                // Spill watermark-evicted intervals into the cold store and
                // seal when the buffer is full. The WAL reclaim floor is
                // then tied to "sealed and fsynced", not "evicted": a
                // degraded store freezes the floor so nothing durable is
                // dropped before it reaches a cold segment.
                if let Some(store) = ingest.store.as_mut() {
                    for (sequence, iv) in ingest.window.take_evicted() {
                        store.append(
                            sequence,
                            ingest.window.symbols().name(iv.symbol),
                            iv.start,
                            iv.end,
                        );
                    }
                    seal_and_note(store, ingest.worker.as_deref(), false);
                }
                let bound = match ingest.store.as_mut() {
                    Some(store) => store.reclaim_bound(cutoff),
                    None => cutoff,
                };
                if let Some(journal) = ingest.journal.as_mut() {
                    journal.reclaim(bound);
                }
            }
            let due = match ingest.max_lag {
                // Adaptive trigger: refresh only once the published
                // snapshot trails the live watermark by more than the
                // bound. A stream that has never published qualifies
                // immediately.
                Some(bound) => match (ingest.window.watermark(), self.cell.load().watermark) {
                    (Some(live), Some(done)) => live.saturating_sub(done) > bound,
                    (Some(_), None) => true,
                    (None, _) => false,
                },
                None => ingest.watermarks % ingest.refresh_every == 0,
            };
            if due {
                // The ingest-path trigger: freeze only when the worker is
                // idle, coalescing into the next epoch otherwise (bounded
                // backpressure, same accounting as `submit_or_coalesce`).
                if let Some(worker) = ingest.worker.clone() {
                    if worker.is_busy() {
                        worker.note_coalesced();
                    } else {
                        deferred = Some((worker, freeze_job(ingest)));
                    }
                }
            }
        }
        drop(guard);
        if let Some((worker, job)) = deferred {
            worker.submit(job);
        }
        Ok(IngestAck {
            accepted: true,
            degraded_now,
        })
    }

    /// Forces a refresh covering everything ingested so far and waits for
    /// it to publish. This is the barrier deterministic tests (and clients
    /// that just loaded a batch) use before querying.
    pub fn sync(&self) -> Result<Arc<PatternSnapshot>, String> {
        // Clone the worker handle under a brief lock; every wait happens
        // without it, so concurrent EVENT/STATS requests stay live for the
        // whole barrier instead of queueing behind a sleeping SYNC.
        let Some(worker) = self.ingest.lock().worker.clone() else {
            return Ok(self.cell.load());
        };
        wait_idle(&worker)?;
        let job = {
            let mut guard = self.ingest.lock();
            if guard.worker.is_none() {
                // A concurrent DROP drained the session between our clone
                // and now; its final refresh already published everything.
                return Ok(self.cell.load());
            }
            freeze_job(&mut guard)
        };
        worker.submit(job);
        wait_idle(&worker)?;
        // Collected so shutdown's `unreported` stays small; the cell
        // already holds the newest snapshot.
        let _ = worker.drain_completed();
        Ok(self.cell.load())
    }

    /// Serves a query from the latest published snapshot — no ingest lock.
    /// Results are canonically ordered: support descending, then pattern
    /// text ascending, so replies are deterministic for a given snapshot.
    pub fn query(&self, prefix: Option<&str>, top: Option<usize>) -> QueryReply {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let snapshot = self.cell.load();
        let root_filter = prefix.and_then(|name| snapshot.symbols.lookup(name));
        let mut lines: Vec<QueryLine> = snapshot
            .result
            .patterns()
            .iter()
            .filter(|fp| match (prefix, root_filter) {
                (None, _) => true,
                // A prefix symbol the snapshot has never seen matches
                // nothing (rather than erroring: the symbol may simply not
                // have arrived yet).
                (Some(_), None) => false,
                (Some(_), Some(root)) => fp
                    .pattern
                    .groups()
                    .first()
                    .and_then(|g| g.first())
                    .is_some_and(|e| e.symbol == root),
            })
            .map(|fp| QueryLine {
                support: fp.support,
                pattern: fp.pattern.display(&snapshot.symbols).to_string(),
            })
            .collect();
        lines.sort_by(|a, b| {
            b.support
                .cmp(&a.support)
                .then_with(|| a.pattern.cmp(&b.pattern))
        });
        if let Some(k) = top {
            lines.truncate(k);
        }
        QueryReply {
            revision: snapshot.revision,
            watermark: snapshot.watermark,
            sequences: snapshot.sequences,
            lines,
        }
    }

    /// Attaches a bounded push subscriber to this session's snapshot
    /// cell: every snapshot published after this call is enqueued, and a
    /// full queue drops the revision for this subscriber only —
    /// publication and ingest never wait (see
    /// [`SnapshotCell::subscribe`]).
    pub fn subscribe(&self, capacity: usize) -> SnapshotSubscriber {
        self.cell.subscribe(capacity)
    }

    /// Point-in-time statistics (takes the ingest lock briefly).
    pub fn stats(&self) -> SessionStats {
        let guard = self.ingest.lock();
        let snapshot = self.cell.load();
        let pipeline = guard
            .worker
            .as_ref()
            .map(|w| w.stats(guard.window.watermark()))
            .unwrap_or_default();
        SessionStats {
            name: self.name.clone(),
            events: guard.events,
            watermarks: guard.watermarks,
            sequences: guard.window.len(),
            open_intervals: guard.window.open_intervals(),
            revision: snapshot.revision,
            patterns: snapshot.result.len(),
            pipeline,
            journal: guard.journal.as_ref().map(|j| j.stats()),
            queries: self.queries.load(Ordering::Relaxed),
        }
    }

    /// Drains the session: flush the WAL, join the worker, and run one
    /// final synchronous refresh so the published snapshot covers every
    /// accepted event. Idempotent — a second drain reports the first's
    /// leftovers without touching anything.
    pub fn drain(&self) -> StreamDrain {
        let mut worker_failed = false;
        let mut pipeline = PipelineStats::default();
        // Phase 1 — brief lock: detach the worker handle (new triggers
        // coalesce into nothing from here on) and flush the WAL so the
        // shutdown stats include the final flush.
        let taken = {
            let mut guard = self.ingest.lock();
            let taken = guard.worker.take();
            if let (Some(worker), Some(journal)) = (taken.as_deref(), guard.journal.as_mut()) {
                // xlint::allow(lock-discipline): Journal::flush is WAL disk I/O; the rule's deadlock scope is channels/joins/sockets, and the journal lives inside the ingest mutex by design.
                if journal.flush() {
                    worker.note_wal_flush();
                }
                if journal.is_degraded() {
                    worker.note_wal_degraded();
                }
            }
            taken
        };
        let first_drain = taken.is_some();
        // Phase 2 — no lock: reclaim sole ownership (a concurrent SYNC may
        // hold a clone; it finishes without the ingest lock, so a bounded
        // wait suffices), then join the worker thread.
        let mut recovered_miner = None;
        if let Some(mut arc) = taken {
            let mut sole = None;
            for _ in 0..SYNC_POLL_LIMIT {
                match Arc::try_unwrap(arc) {
                    Ok(worker) => {
                        sole = Some(worker);
                        break;
                    }
                    Err(shared) => {
                        arc = shared;
                        std::thread::sleep(SYNC_POLL);
                    }
                }
            }
            match sole {
                Some(worker) => {
                    let outcome = worker.shutdown();
                    pipeline = outcome.stats;
                    match outcome.miner {
                        Some(miner) => recovered_miner = Some(miner),
                        None => worker_failed = true,
                    }
                }
                // A SYNC pinned its clone past the timeout: the session is
                // wedged the same way a dead worker wedges it. Report it
                // rather than joining under contention.
                None => worker_failed = true,
            }
        }
        // Phase 3 — freeze the final epoch under a brief lock; the mine
        // itself runs without the lock and publishes through the cell the
        // miner is still wired to, folding in everything after the last
        // refresh.
        if let Some(mut miner) = recovered_miner {
            let view = {
                let mut guard = self.ingest.lock();
                miner.set_min_support(guard.support.absolute_for(guard.window.len()));
                guard.window.freeze()
            };
            let _ = miner.refresh_frozen(&view, MiningBudget::unlimited());
        }
        // Phase 4 — brief lock: final spill + seal, then the report. Only
        // the drain that actually took the worker spills — a second drain
        // re-spilling the same completed intervals would duplicate them.
        let mut guard = self.ingest.lock();
        if first_drain {
            let ingest = &mut *guard;
            if let Some(store) = ingest.store.as_mut() {
                for (sequence, iv) in ingest.window.take_evicted() {
                    store.append(
                        sequence,
                        ingest.window.symbols().name(iv.symbol),
                        iv.start,
                        iv.end,
                    );
                }
                let completed: Vec<_> = ingest.window.completed_intervals().collect();
                for (sequence, iv) in completed {
                    store.append(
                        sequence,
                        ingest.window.symbols().name(iv.symbol),
                        iv.start,
                        iv.end,
                    );
                }
                // Forced: the drain must leave everything sealed on disk.
                // The worker is already gone, so the seal is not counted in
                // the pipeline stats — the store's own counters keep it.
                seal_and_note(store, None, true);
            }
        }
        let wal_degraded =
            pipeline.wal_degraded || guard.journal.as_ref().is_some_and(|j| j.is_degraded());
        let snapshot = self.cell.load();
        StreamDrain {
            name: self.name.clone(),
            pipeline,
            wal_degraded,
            worker_failed,
            events: guard.events,
            final_revision: snapshot.revision,
            final_patterns: snapshot.result.len(),
        }
    }
}

/// Freezes the window into a refresh epoch. Freezing needs the ingest
/// lock (it mutates the window's dirty set); the *submit* is the caller's
/// job, after the lock drops — `RefreshWorker::submit` can block.
fn freeze_job(ingest: &mut Ingest) -> RefreshJob {
    let min_support = Some(ingest.support.absolute_for(ingest.window.len()));
    RefreshJob {
        view: ingest.window.freeze(),
        budget: MiningBudget::unlimited(),
        min_support,
    }
}

/// Seals the segment store's buffered spill (forced or when full) and
/// folds the seal outcome into the pipeline counters when a worker is
/// still attached. Callers hold the ingest lock; sealing is disk I/O, the
/// same class the journal already performs under this lock.
fn seal_and_note(store: &mut SegmentStore, worker: Option<&RefreshWorker>, force: bool) {
    let before = store.stats().clone();
    let ran = if force {
        store.seal();
        true
    } else {
        store.maybe_seal()
    };
    if !ran {
        return;
    }
    let after = store.stats();
    if let Some(worker) = worker {
        if after.segments_sealed > before.segments_sealed {
            worker.note_segment_seal(
                after.records_sealed - before.records_sealed,
                after.bytes_sealed - before.bytes_sealed,
            );
        }
        if after.seal_failures > before.seal_failures {
            worker.note_segment_seal_failure();
        }
    }
}

/// Serves a `HISTORY` request: re-mines a sealed time range straight out
/// of a stream's cold segment directory. Runs entirely on the calling
/// connection thread and touches no session state — no ingest lock, no
/// registry entry — so the stream may be live, draining or long dropped;
/// ingestion never waits on a historical mine. Bounded by
/// [`HISTORY_DEADLINE`] so a huge range cannot pin the connection.
pub fn mine_history(
    dir: &Path,
    from: Time,
    to: Time,
    support: Option<SupportSpec>,
    top: Option<usize>,
    threads: usize,
) -> Result<QueryReply, String> {
    let reader = SegmentReader::open(dir).map_err(|e| e.to_string())?;
    let load = reader.load_range(from, to).map_err(|e| e.to_string())?;
    let min_support = support.map_or(1, |s| s.absolute_for(load.sequences));
    // Every symbol is dirty: a historical mine has no carried state to be
    // incremental against, so the whole range is mined fresh.
    let dirty: Vec<_> = load.symbols.iter().map(|(id, _)| id).collect();
    let view = FrozenView::from_parts(dirty, load.seq_indexes, Some(to), Some(from), load.symbols);
    let mut miner = IncrementalMiner::new(MinerConfig::with_min_support(min_support), threads);
    let budget = MiningBudget::unlimited().with_timeout(HISTORY_DEADLINE);
    let snapshot = miner.refresh_frozen(&view, budget);
    let mut lines: Vec<QueryLine> = snapshot
        .result
        .patterns()
        .iter()
        .map(|fp| QueryLine {
            support: fp.support,
            pattern: fp.pattern.display(&snapshot.symbols).to_string(),
        })
        .collect();
    lines.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then_with(|| a.pattern.cmp(&b.pattern))
    });
    if let Some(k) = top {
        lines.truncate(k);
    }
    Ok(QueryReply {
        revision: snapshot.revision,
        watermark: snapshot.watermark,
        sequences: snapshot.sequences,
        lines,
    })
}

/// Polls the worker until its queue is empty. Bounded: a worker that died
/// mid-refresh never completes its epoch, and SYNC must fail rather than
/// hang the connection forever. Callers must not hold the ingest lock —
/// this sleeps.
fn wait_idle(worker: &RefreshWorker) -> Result<(), String> {
    for _ in 0..SYNC_POLL_LIMIT {
        if !worker.is_busy() {
            return Ok(());
        }
        std::thread::sleep(SYNC_POLL);
    }
    Err("refresh worker unresponsive (sync timed out)".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(window: Time, support: SupportSpec) -> CreateSpec {
        CreateSpec {
            window,
            support,
            refresh_every: 1,
            max_arity: None,
            max_gap: None,
            durable: false,
        }
    }

    fn interval(sequence: u64, symbol: &str, start: Time, end: Time) -> StreamEvent {
        StreamEvent::Interval {
            sequence,
            symbol: symbol.into(),
            start,
            end,
        }
    }

    fn temp_root(tag: &str) -> std::path::PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "server-session-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn ingest_sync_query_round_trip() {
        let config = ServerConfig::default();
        let (session, outcome) =
            StreamSession::open("s", &spec(100, SupportSpec::Absolute(2)), &config).unwrap();
        assert_eq!(outcome.recovered_events, 0);
        for seq in 0..3u64 {
            session.ingest(interval(seq, "fever", 0, 5)).unwrap();
        }
        session.ingest(StreamEvent::Watermark(10)).unwrap();
        let snapshot = session.sync().unwrap();
        assert!(snapshot.revision >= 1);
        let reply = session.query(None, None);
        assert_eq!(reply.lines.len(), 1);
        assert_eq!(reply.lines[0].support, 3);
        // Prefix filtering: an unknown symbol matches nothing.
        assert!(session.query(Some("rash"), None).lines.is_empty());
        assert_eq!(session.query(Some("fever"), None).lines.len(), 1);
        let drain = session.drain();
        assert!(!drain.worker_failed);
        assert!(!drain.wal_degraded);
        assert_eq!(drain.events, 4);
    }

    #[test]
    fn query_orders_by_support_then_pattern_and_truncates() {
        let config = ServerConfig::default();
        let (session, _) =
            StreamSession::open("s", &spec(1000, SupportSpec::Absolute(1)), &config).unwrap();
        for seq in 0..3u64 {
            session.ingest(interval(seq, "a", 0, 5)).unwrap();
        }
        session.ingest(interval(0, "b", 10, 15)).unwrap();
        session.ingest(StreamEvent::Watermark(20)).unwrap();
        session.sync().unwrap();
        let reply = session.query(None, None);
        assert!(reply.lines.len() >= 2);
        for pair in reply.lines.windows(2) {
            assert!(
                pair[0].support > pair[1].support
                    || (pair[0].support == pair[1].support && pair[0].pattern <= pair[1].pattern),
                "canonical order violated: {pair:?}"
            );
        }
        let top1 = session.query(None, Some(1));
        assert_eq!(top1.lines.len(), 1);
        assert_eq!(top1.lines[0].support, 3);
        session.drain();
    }

    #[test]
    fn rejected_events_leave_the_session_usable() {
        let config = ServerConfig::default();
        let (session, _) =
            StreamSession::open("s", &spec(100, SupportSpec::Absolute(1)), &config).unwrap();
        // A close without an open is refused by ingest semantics.
        let refused = session.ingest(StreamEvent::Close {
            sequence: 1,
            symbol: "x".into(),
            at: 5,
        });
        assert!(refused.is_err());
        session.ingest(interval(1, "x", 0, 4)).unwrap();
        session.ingest(StreamEvent::Watermark(6)).unwrap();
        let snapshot = session.sync().unwrap();
        assert_eq!(snapshot.result.len(), 1);
        session.drain();
    }

    #[test]
    fn durable_session_recovers_by_replay_on_reopen() {
        let root = temp_root("recover");
        let config = ServerConfig {
            wal_root: Some(root.clone()),
            fsync: durability::FsyncPolicy::Always,
            threads: 1,
            ..ServerConfig::default()
        };
        let mut s = spec(100, SupportSpec::Absolute(2));
        s.durable = true;
        let (session, outcome) = StreamSession::open("vitals", &s, &config).unwrap();
        assert!(outcome.durable);
        assert_eq!(outcome.recovered_events, 0);
        for seq in 0..2u64 {
            session.ingest(interval(seq, "fever", 0, 5)).unwrap();
            session.ingest(interval(seq, "rash", 3, 9)).unwrap();
        }
        session.ingest(StreamEvent::Watermark(12)).unwrap();
        let before = session.sync().unwrap();
        let drain = session.drain();
        assert!(!drain.wal_degraded, "healthy WAL through the drain");

        // Re-open the same name: the WAL directory exists, so the session
        // must recover by replay and immediately publish the old patterns.
        let (revived, outcome) = StreamSession::open("vitals", &s, &config).unwrap();
        assert_eq!(outcome.recovered_events, 5);
        assert_eq!(outcome.recovered_watermark, Some(12));
        assert!(outcome.replay_clean);
        let after = revived.sync().unwrap();
        let render = |s: &PatternSnapshot| {
            let mut lines: Vec<String> = s
                .result
                .patterns()
                .iter()
                .map(|fp| format!("{}\t{}", fp.support, fp.pattern.display(&s.symbols)))
                .collect();
            lines.sort();
            lines
        };
        assert_eq!(render(&before), render(&after));
        revived.drain();
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn wal_without_root_is_refused() {
        let mut s = spec(100, SupportSpec::Absolute(1));
        s.durable = true;
        let Err(err) = StreamSession::open("s", &s, &ServerConfig::default()) else {
            panic!("durable CREATE without --wal-root must be refused");
        };
        assert!(err.contains("wal-root"), "{err}");
    }

    #[test]
    fn adaptive_trigger_refreshes_on_lag_not_every_watermark() {
        let config = ServerConfig {
            max_lag: Some(50),
            ..ServerConfig::default()
        };
        let (session, _) =
            StreamSession::open("s", &spec(10_000, SupportSpec::Absolute(1)), &config).unwrap();
        session.ingest(interval(1, "a", 0, 5)).unwrap();
        // The first qualifying watermark publishes (nothing published yet
        // counts as unbounded lag); wait for it so later lag comparisons
        // run against a real snapshot watermark.
        session.ingest(StreamEvent::Watermark(10)).unwrap();
        for _ in 0..3_000 {
            if session.query(None, Some(0)).revision > 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let published = session.query(None, Some(0)).revision;
        assert!(published >= 1);
        let submitted_before = session.stats().pipeline.submitted_refreshes;
        // Watermarks within the bound of the published snapshot must not
        // submit new refreshes, even though refresh_every == 1.
        for t in [20, 30, 40] {
            session.ingest(StreamEvent::Watermark(t)).unwrap();
        }
        assert_eq!(
            session.stats().pipeline.submitted_refreshes,
            submitted_before,
            "watermarks within max_lag must not trigger refreshes"
        );
        // A watermark beyond the bound triggers again.
        session.ingest(StreamEvent::Watermark(200)).unwrap();
        assert!(session.stats().pipeline.submitted_refreshes > submitted_before);
        session.drain();
    }

    #[test]
    fn subscriber_sees_session_publications() {
        let config = ServerConfig::default();
        let (session, _) =
            StreamSession::open("s", &spec(100, SupportSpec::Absolute(1)), &config).unwrap();
        let sub = session.subscribe(8);
        session.ingest(interval(1, "a", 0, 5)).unwrap();
        session.ingest(StreamEvent::Watermark(10)).unwrap();
        session.sync().unwrap();
        let snapshot = sub
            .next_timeout(Duration::from_secs(5))
            .expect("a published snapshot");
        assert!(snapshot.revision >= 1);
        session.drain();
    }

    #[test]
    fn concurrent_syncs_and_ingest_make_progress() {
        // SYNC no longer holds the ingest lock while it waits for the
        // worker, so writers on other connections keep landing during a
        // barrier and every sync still observes a coherent snapshot.
        let config = ServerConfig::default();
        let (session, _) =
            StreamSession::open("s", &spec(100_000, SupportSpec::Absolute(1)), &config).unwrap();
        for seq in 0..20u64 {
            session.ingest(interval(seq, "a", 0, 5)).unwrap();
        }
        session.ingest(StreamEvent::Watermark(10)).unwrap();
        let syncers: Vec<_> = (0..2)
            .map(|_| {
                let s = Arc::clone(&session);
                std::thread::spawn(move || {
                    for _ in 0..5 {
                        s.sync().unwrap();
                    }
                })
            })
            .collect();
        let writer = {
            let s = Arc::clone(&session);
            std::thread::spawn(move || {
                for seq in 20..120u64 {
                    s.ingest(interval(seq, "b", 0, 5)).unwrap();
                    if seq % 25 == 0 {
                        s.ingest(StreamEvent::Watermark(10 + seq as Time)).unwrap();
                    }
                }
            })
        };
        for t in syncers {
            t.join().unwrap();
        }
        writer.join().unwrap();
        let snapshot = session.sync().unwrap();
        assert!(snapshot.revision >= 1);
        let drain = session.drain();
        assert!(!drain.worker_failed);
        // 20 + 1 watermark up front, 100 intervals + 4 watermarks (seq
        // 25/50/75/100) from the writer.
        assert_eq!(drain.events, 125);
    }

    #[test]
    fn drain_while_sync_is_in_flight_completes() {
        // DROP reclaims the worker handle with a bounded wait, so a
        // concurrent SYNC (which holds a clone of the handle while it
        // waits) delays the drain instead of deadlocking it.
        let config = ServerConfig::default();
        let (session, _) =
            StreamSession::open("s", &spec(100_000, SupportSpec::Absolute(1)), &config).unwrap();
        for seq in 0..10u64 {
            session.ingest(interval(seq, "a", 0, 5)).unwrap();
        }
        session.ingest(StreamEvent::Watermark(10)).unwrap();
        let syncer = {
            let s = Arc::clone(&session);
            // The sync may lose the race and see a drained session; either
            // way it must return (Ok from the published cell) not hang.
            std::thread::spawn(move || {
                let _ = s.sync();
            })
        };
        let drain = session.drain();
        syncer.join().unwrap();
        assert!(!drain.worker_failed);
        assert_eq!(drain.events, 11);
    }

    #[test]
    fn drain_is_idempotent() {
        let config = ServerConfig::default();
        let (session, _) =
            StreamSession::open("s", &spec(100, SupportSpec::Absolute(1)), &config).unwrap();
        session.ingest(interval(1, "a", 0, 5)).unwrap();
        let first = session.drain();
        let second = session.drain();
        assert_eq!(first.events, second.events);
        assert!(!second.worker_failed);
    }
}
