//! Response framing for the service protocol.
//!
//! Requests are parsed by [`interval_core::wire`]; this module renders the
//! three response shapes the server ever sends:
//!
//! ```text
//! OK <detail>                      # single-line success
//! ERR <reason>                     # single-line failure (connection stays up)
//! BEGIN <n> [k=v ...]              # framed payload: exactly n lines follow
//! <payload line> × n
//! END
//! REV <k=v ...>                    # asynchronous push (active SUBSCRIBE only)
//! ```
//!
//! `REV` lines appear only between request/response exchanges on a
//! connection with an active subscription — never inside a `BEGIN … END`
//! frame — so clients that subscribe must treat any `REV`-prefixed line as
//! a push and keep waiting for the response they asked for.
//!
//! The `BEGIN <n> … END` frame lets a client read a variable-length reply
//! without sniffing — it knows the exact line count up front and `END`
//! double-checks framing. Payload lines are guaranteed to never start with
//! `OK`, `ERR`, `BEGIN` or `END` confusion because clients must count, not
//! sniff.

use std::io::{self, Write};

use stream::PatternSnapshot;

use crate::session::{QueryReply, SessionStats};
use crate::stats::CountersSnapshot;

/// Writes a single-line success response.
pub fn ok(w: &mut impl Write, detail: &str) -> io::Result<()> {
    if detail.is_empty() {
        w.write_all(b"OK\n")
    } else {
        writeln!(w, "OK {detail}")
    }
}

/// Writes a single-line error response.
pub fn err(w: &mut impl Write, reason: &str) -> io::Result<()> {
    // Keep the frame single-line no matter what the reason contains.
    let flat = reason.replace(['\n', '\r'], " ");
    writeln!(w, "ERR {flat}")
}

/// Writes a framed payload: `BEGIN <n> [suffix]`, the lines, `END`.
pub fn block(w: &mut impl Write, suffix: &str, lines: &[String]) -> io::Result<()> {
    if suffix.is_empty() {
        writeln!(w, "BEGIN {}", lines.len())?;
    } else {
        writeln!(w, "BEGIN {} {suffix}", lines.len())?;
    }
    for line in lines {
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
    }
    w.write_all(b"END\n")
}

/// Renders a query reply: header carries the snapshot provenance, each
/// payload line is `<support>\t<pattern>` in canonical order.
pub fn query_reply(w: &mut impl Write, reply: &QueryReply) -> io::Result<()> {
    let suffix = format!(
        "revision={} watermark={} sequences={}",
        reply.revision,
        reply
            .watermark
            .map_or_else(|| "-".to_owned(), |t| t.to_string()),
        reply.sequences,
    );
    let lines: Vec<String> = reply
        .lines
        .iter()
        .map(|l| format!("{}\t{}", l.support, l.pattern))
        .collect();
    block(w, &suffix, &lines)
}

/// One pushed revision notification for an active subscription.
/// `dropped` is the subscriber's cumulative drop count, so a client can
/// detect that it missed revisions without comparing revision numbers.
pub fn rev_line(stream: &str, snapshot: &PatternSnapshot, dropped: u64) -> String {
    format!(
        "REV stream={stream} revision={} watermark={} sequences={} patterns={} dropped={dropped}",
        snapshot.revision,
        snapshot
            .watermark
            .map_or_else(|| "-".to_owned(), |t| t.to_string()),
        snapshot.sequences,
        snapshot.result.len(),
    )
}

/// One `STATS` payload line for a stream — stable `k=v` pairs.
pub fn stats_line(s: &SessionStats) -> String {
    let lag = s
        .pipeline
        .refresh_lag
        .map_or_else(|| "-".to_owned(), |t| t.to_string());
    // The journal counts its own flushes/degradation; the pipeline keeps a
    // sticky mirror (`PipelineStats::wal_flushes`/`wal_degraded`) that can
    // see flushes the journal view misses across a worker handoff. Report
    // the union so neither side's observation is dropped.
    let wal = match &s.journal {
        None => "wal=none".to_owned(),
        Some(j) => format!(
            "wal_records={} wal_flushes={} wal_degraded={}",
            j.wal.records_appended,
            j.flushes.max(s.pipeline.wal_flushes),
            j.degraded || s.pipeline.wal_degraded
        ),
    };
    format!(
        "stream={} events={} watermarks={} sequences={} open={} revision={} patterns={} \
         submitted={} completed={} coalesced={} during_refresh={} lag={lag} \
         subscribers={} sub_delivered={} sub_dropped={} sub_max_lag={} \
         sealed={} seal_records={} seal_bytes={} seal_failures={} queries={} {wal}",
        s.name,
        s.events,
        s.watermarks,
        s.sequences,
        s.open_intervals,
        s.revision,
        s.patterns,
        s.pipeline.submitted_refreshes,
        s.pipeline.completed_refreshes,
        s.pipeline.coalesced_refreshes,
        s.pipeline.events_during_refresh,
        s.pipeline.subscribers,
        s.pipeline.subscriber_delivered,
        s.pipeline.subscriber_dropped,
        s.pipeline.subscriber_max_lag,
        s.pipeline.segments_sealed,
        s.pipeline.segment_records,
        s.pipeline.segment_bytes,
        s.pipeline.segment_seal_failures,
        s.queries,
    )
}

/// The server-wide `STATS` payload line.
pub fn server_line(c: &CountersSnapshot, streams: usize) -> String {
    format!(
        "server streams={streams} connections={} commands={} protocol_errors={} \
         events_accepted={} events_rejected={} queries={}",
        c.connections,
        c.commands,
        c.protocol_errors,
        c.events_accepted,
        c.events_rejected,
        c.queries,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::QueryLine;

    #[test]
    fn frames_render_exactly() {
        let mut buf = Vec::new();
        ok(&mut buf, "created stream=s").unwrap();
        ok(&mut buf, "").unwrap();
        err(&mut buf, "multi\nline\rreason").unwrap();
        block(&mut buf, "k=v", &["a".into(), "b".into()]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(
            text,
            "OK created stream=s\nOK\nERR multi line reason\nBEGIN 2 k=v\na\nb\nEND\n"
        );
    }

    #[test]
    fn query_reply_renders_provenance_and_tab_separated_lines() {
        let reply = QueryReply {
            revision: 3,
            watermark: Some(42),
            sequences: 7,
            lines: vec![
                QueryLine {
                    support: 5,
                    pattern: "a+ | a-".into(),
                },
                QueryLine {
                    support: 2,
                    pattern: "b+ | b-".into(),
                },
            ],
        };
        let mut buf = Vec::new();
        query_reply(&mut buf, &reply).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(
            text,
            "BEGIN 2 revision=3 watermark=42 sequences=7\n5\ta+ | a-\n2\tb+ | b-\nEND\n"
        );
    }

    #[test]
    fn server_line_is_stable() {
        let line = server_line(&CountersSnapshot::default(), 2);
        assert!(line.starts_with("server streams=2 connections=0"), "{line}");
    }
}
