//! Server-wide connection and command counters.
//!
//! Counters are plain relaxed atomics: they are monotone operational
//! telemetry, not synchronization. The snapshot type is a plain struct so
//! callers (the CLI's `--stats-json`, `STATS` responses, tests) can render
//! it without a serialization dependency.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone counters shared by every connection thread.
#[derive(Debug, Default)]
pub struct ServerCounters {
    connections: AtomicU64,
    commands: AtomicU64,
    protocol_errors: AtomicU64,
    events_accepted: AtomicU64,
    events_rejected: AtomicU64,
    queries: AtomicU64,
}

impl ServerCounters {
    /// Records an accepted connection.
    pub fn note_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one parsed, dispatched request frame.
    pub fn note_command(&self) {
        self.commands.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request that failed to parse or was refused.
    pub fn note_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` events accepted into some stream's window.
    pub fn note_events_accepted(&self, n: u64) {
        self.events_accepted.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` events refused by ingest semantics or the event parser.
    pub fn note_events_rejected(&self, n: u64) {
        self.events_rejected.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one served `QUERY`.
    pub fn note_query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            commands: self.commands.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            events_accepted: self.events_accepted.load(Ordering::Relaxed),
            events_rejected: self.events_rejected.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value snapshot of [`ServerCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Request frames parsed and dispatched.
    pub commands: u64,
    /// Requests that failed to parse or were refused.
    pub protocol_errors: u64,
    /// Events accepted into stream windows.
    pub events_accepted: u64,
    /// Events refused (parse failure or ingest refusal).
    pub events_rejected: u64,
    /// `QUERY` requests served.
    pub queries: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_into_snapshots() {
        let c = ServerCounters::default();
        c.note_connection();
        c.note_command();
        c.note_command();
        c.note_protocol_error();
        c.note_events_accepted(10);
        c.note_events_rejected(2);
        c.note_query();
        let s = c.snapshot();
        assert_eq!(s.connections, 1);
        assert_eq!(s.commands, 2);
        assert_eq!(s.protocol_errors, 1);
        assert_eq!(s.events_accepted, 10);
        assert_eq!(s.events_rejected, 2);
        assert_eq!(s.queries, 1);
    }
}
