//! The pattern-mining service tier: a long-running TCP server multiplexing
//! multiple independent named streams over the streaming engine.
//!
//! Everything below this crate already exists as a library — the
//! [`interval_core::StreamEvent`] wire format, the sliding window, the
//! pipelined [`stream::RefreshWorker`], [`stream::SnapshotCell`]
//! publication and the per-stream write-ahead log — but was only reachable
//! through a single-stream CLI. This crate is the step that turns
//! "library + CLI" into "system serving traffic":
//!
//! - **Multi-tenancy** — each `CREATE`d stream is an independent
//!   [`session::StreamSession`] owning its own window, refresh worker and
//!   (optionally) WAL directory under the server's `--wal-root`. A stream
//!   whose WAL directory already exists is *recovered by replay* before it
//!   goes live, so a restarted server resumes where the crash left it.
//! - **Reads never block writes** — `QUERY` is served entirely from the
//!   latest published [`stream::PatternSnapshot`]; it takes no ingest lock
//!   and holds nothing but an `Arc` while it filters and sorts.
//! - **Graceful drain** — SIGINT or `SHUTDOWN` stops accepting, joins
//!   every connection, then drains each stream through
//!   [`stream::RefreshWorker::shutdown_flushing`]: the WAL tail is fsynced
//!   and a final synchronous refresh folds in every accepted event, so no
//!   accepted event is lost.
//!
//! The request grammar lives in [`interval_core::wire`]; the line-oriented
//! response framing (`OK …` / `ERR …` / `BEGIN n … END`) in [`proto`]. See
//! `docs/SERVER.md` for the protocol reference and deployment guidance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accept;
pub mod conn;
pub mod proto;
pub mod registry;
pub mod session;
pub mod stats;

use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use durability::FsyncPolicy;
use interval_core::{CancellationToken, Time};
use stream::PipelineStats;

pub use accept::ServerHandle;
pub use registry::Registry;
pub use session::StreamSession;
pub use stats::{CountersSnapshot, ServerCounters};

/// Server-wide configuration, fixed at bind time.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Directory that holds one WAL sub-directory per durable stream.
    /// `None` disables the `WAL` keyword of `CREATE` entirely.
    pub wal_root: Option<PathBuf>,
    /// Directory that holds one cold segment-store sub-directory per
    /// stream. When set, every stream spills watermark-evicted intervals
    /// into sealed segment files under `<segment_root>/<name>` and the
    /// `HISTORY` verb can re-mine any sealed time range (see
    /// `docs/STORAGE.md`). `None` disables sealing and `HISTORY`.
    pub segment_root: Option<PathBuf>,
    /// Fsync policy for every durable stream's journal.
    pub fsync: FsyncPolicy,
    /// Worker threads per stream's miner (0 = automatic).
    pub threads: usize,
    /// Shard workers in every stream's refresh pool (0 and 1 both mean a
    /// single worker; see [`stream::ShardPool`]).
    pub refresh_workers: usize,
    /// Adaptive refresh bound: when set, a watermark triggers a refresh
    /// only once the published snapshot trails the live watermark by more
    /// than this many time units, replacing the per-`refresh_every` tick.
    pub max_lag: Option<Time>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            wal_root: None,
            segment_root: None,
            fsync: FsyncPolicy::Epoch,
            threads: 0,
            refresh_workers: 1,
            max_lag: None,
        }
    }
}

/// State shared between the accept loop and every connection thread.
pub(crate) struct Shared {
    pub(crate) registry: Registry,
    pub(crate) counters: ServerCounters,
    pub(crate) config: ServerConfig,
    /// Set once the server has stopped accepting; connection loops exit at
    /// their next poll instead of waiting for the client to hang up.
    pub(crate) draining: AtomicBool,
    /// Set by the first `SHUTDOWN` request; the accept loop treats it
    /// exactly like a cancelled token.
    pub(crate) shutdown_requested: AtomicBool,
}

/// What one stream looked like when the drain closed it.
#[derive(Debug, Clone)]
pub struct StreamDrain {
    /// Stream name.
    pub name: String,
    /// Final pipeline counters (refreshes, coalescing, WAL flushes).
    pub pipeline: PipelineStats,
    /// Whether the stream's WAL had degraded (sticky).
    pub wal_degraded: bool,
    /// Whether the stream's refresh worker died instead of joining.
    pub worker_failed: bool,
    /// Events this stream accepted over its lifetime.
    pub events: u64,
    /// Revision of the snapshot left published after the final refresh.
    pub final_revision: u64,
    /// Patterns in that final snapshot.
    pub final_patterns: usize,
}

/// Everything [`Server::run`] hands back after a graceful drain.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Per-stream drain outcomes, in name order.
    pub streams: Vec<StreamDrain>,
    /// Final connection/command counters.
    pub counters: CountersSnapshot,
}

impl DrainReport {
    /// Whether any stream's refresh worker died instead of joining.
    pub fn any_worker_failed(&self) -> bool {
        self.streams.iter().any(|s| s.worker_failed)
    }

    /// Whether any stream's WAL degraded.
    pub fn any_wal_degraded(&self) -> bool {
        self.streams.iter().any(|s| s.wal_degraded)
    }
}

/// A bound (but not yet running) server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listening socket. Port 0 picks a free port; read it back
    /// with [`local_addr`](Self::local_addr).
    pub fn bind(addr: &str, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                registry: Registry::new(),
                counters: ServerCounters::default(),
                config,
                draining: AtomicBool::new(false),
                shutdown_requested: AtomicBool::new(false),
            }),
        })
    }

    /// The address the server actually listens on.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop until `token` is cancelled (SIGINT) or a
    /// `SHUTDOWN` request arrives, then drains: stop accepting, join every
    /// connection, flush + shut down every stream. The only error this can
    /// return is a failure to switch the listener to non-blocking mode,
    /// before any request is served.
    pub fn run(self, token: CancellationToken) -> std::io::Result<DrainReport> {
        accept::run_loop(self.listener, self.shared, token)
    }
}
