//! The stream registry: name → session, shared by every connection.
//!
//! Lookups are reads on a `parking_lot::RwLock` over a `BTreeMap` (sorted,
//! so `STATS` and drain reports come out in deterministic name order). The
//! lock is held only for map operations — never across an ingest, query or
//! drain — so one tenant's traffic cannot serialize another's behind the
//! registry.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::session::StreamSession;
use crate::StreamDrain;

/// Hard cap on concurrently registered streams; each one owns a refresh
/// worker thread, so an unbounded registry is an unbounded thread pool.
pub const MAX_STREAMS: usize = 256;

/// Name → session map. See the module docs for the locking contract.
#[derive(Default)]
pub struct Registry {
    streams: RwLock<BTreeMap<String, Arc<StreamSession>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks a stream up by name.
    pub fn get(&self, name: &str) -> Option<Arc<StreamSession>> {
        self.streams.read().get(name).cloned()
    }

    /// Registers a new session. Fails if the name is taken or the registry
    /// is full.
    pub fn insert(&self, session: Arc<StreamSession>) -> Result<(), String> {
        let mut map = self.streams.write();
        if map.len() >= MAX_STREAMS {
            return Err(format!("stream limit reached ({MAX_STREAMS})"));
        }
        let name = session.name().to_owned();
        if map.contains_key(&name) {
            return Err(format!("stream {name:?} already exists"));
        }
        map.insert(name, session);
        Ok(())
    }

    /// Unregisters and returns a session (the caller drains it).
    pub fn remove(&self, name: &str) -> Option<Arc<StreamSession>> {
        self.streams.write().remove(name)
    }

    /// Every registered session, in name order.
    pub fn all(&self) -> Vec<Arc<StreamSession>> {
        self.streams.read().values().cloned().collect()
    }

    /// Number of registered streams.
    pub fn len(&self) -> usize {
        self.streams.read().len()
    }

    /// Whether no streams are registered.
    pub fn is_empty(&self) -> bool {
        self.streams.read().is_empty()
    }

    /// Removes and drains every session, in name order. Sessions are taken
    /// out of the map first so no new traffic can reach them mid-drain.
    pub fn drain_all(&self) -> Vec<StreamDrain> {
        let taken: Vec<Arc<StreamSession>> = {
            let mut map = self.streams.write();
            std::mem::take(&mut *map).into_values().collect()
        };
        taken.iter().map(|s| s.drain()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServerConfig;
    use interval_core::wire::{CreateSpec, SupportSpec};

    fn session(name: &str) -> Arc<StreamSession> {
        let spec = CreateSpec {
            window: 100,
            support: SupportSpec::Absolute(1),
            refresh_every: 1,
            max_arity: None,
            max_gap: None,
            durable: false,
        };
        StreamSession::open(name, &spec, &ServerConfig::default())
            .unwrap()
            .0
    }

    #[test]
    fn insert_get_remove_and_duplicate_rejection() {
        let r = Registry::new();
        assert!(r.is_empty());
        r.insert(session("a")).unwrap();
        r.insert(session("b")).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.get("a").is_some());
        assert!(r.get("missing").is_none());
        let err = r.insert(session("a")).unwrap_err();
        assert!(err.contains("already exists"), "{err}");
        let names: Vec<String> = r.all().iter().map(|s| s.name().to_owned()).collect();
        assert_eq!(names, vec!["a", "b"], "deterministic order");
        let removed = r.remove("a").unwrap();
        removed.drain();
        assert_eq!(r.len(), 1);
        for drain in r.drain_all() {
            assert!(!drain.worker_failed);
        }
        assert!(r.is_empty());
    }
}
