//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), table-driven
//! with slicing-by-8.
//!
//! Hand-rolled because the workspace takes no external dependencies beyond
//! what the seed already pinned — and a page of `const fn` beats a crate.
//! This is the same checksum zlib/PNG/Ethernet use, so the committed WAL
//! fixtures can be cross-checked with any standard tool. The slicing-by-8
//! kernel folds eight bytes per step through eight independent table
//! lookups, breaking the one-lookup-per-byte dependency chain that makes
//! the textbook loop latency-bound — the WAL checksums every record on the
//! ingest hot path, so this matters.

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    // tables[k][b] = CRC of byte b followed by k zero bytes.
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// The CRC-32 of `bytes` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][chunk[4] as usize]
            ^ TABLES[2][chunk[5] as usize]
            ^ TABLES[1][chunk[6] as usize]
            ^ TABLES[0][chunk[7] as usize];
    }
    for &byte in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ byte as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_vector() {
        // The canonical CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut bytes = b"watermark 42".to_vec();
        let clean = crc32(&bytes);
        for i in 0..bytes.len() * 8 {
            bytes[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&bytes), clean, "flip at bit {i} went undetected");
            bytes[i / 8] ^= 1 << (i % 8);
        }
        assert_eq!(crc32(&bytes), clean);
    }
}
