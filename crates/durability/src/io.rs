//! The filesystem surface the WAL writes through, plus retry-with-bounded-
//! backoff for transient errors and (under `cfg(test)` or the
//! `fault-injection` feature) a deterministic faulty-filesystem shim.
//!
//! The WAL never touches `std::fs` directly: it is generic over [`WalFs`],
//! so crash-point tests swap in `FaultyFs` to inject short writes,
//! interrupted syscalls, fsync failures, bit flips at chosen offsets and a
//! hard "disk dies after N bytes" cliff — all deterministic, no timing or
//! randomness involved.
//!
//! This module is the workspace's sanctioned home for durability clock
//! reads: the backoff deadline below is the one place wall-clock time is
//! consulted (see `xlint`'s `no-unbudgeted-clock` rule).

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::thread;
use std::time::{Duration, Instant};

/// One open, append-only WAL segment file.
pub trait WalFile {
    /// Appends bytes, returning how many were accepted (may be short).
    fn append(&mut self, bytes: &[u8]) -> io::Result<usize>;
    /// Durably flushes everything appended so far to stable storage.
    fn sync(&mut self) -> io::Result<()>;
}

/// The handful of filesystem operations the WAL needs, as a trait so the
/// fault-injection shim can sit between the log and the disk.
pub trait WalFs {
    /// The segment file handle type.
    type File: WalFile;
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Opens `path` for appending, creating it if absent.
    fn open_append(&self, path: &Path) -> io::Result<Self::File>;
    /// Reads a whole segment file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Lists the files directly under `dir`.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Deletes a reclaimed segment file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
}

/// The real filesystem: `std::fs` with `sync_all` durability.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdFs;

impl WalFile for fs::File {
    fn append(&mut self, bytes: &[u8]) -> io::Result<usize> {
        self.write(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.sync_all()
    }
}

impl WalFs for StdFs {
    type File = fs::File;

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn open_append(&self, path: &Path) -> io::Result<fs::File> {
        fs::OpenOptions::new().create(true).append(true).open(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut files = Vec::new();
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            if path.is_file() {
                files.push(path);
            }
        }
        Ok(files)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }
}

/// Bounded retry for transient write errors.
///
/// Interrupted syscalls (`EINTR`) retry immediately without consuming an
/// attempt; every other error backs off exponentially from `base_delay`.
/// Both the attempt count and total wall-clock time are capped — on
/// exhaustion the last error is returned and the caller (the stream's
/// journal) degrades gracefully rather than killing ingestion.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Attempts before giving up (1 = no retries).
    pub max_attempts: u32,
    /// First backoff delay; doubles per failed attempt.
    pub base_delay: Duration,
    /// Hard wall-clock ceiling across all attempts and sleeps.
    pub max_elapsed: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(1),
            max_elapsed: Duration::from_millis(250),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries — failures surface immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_elapsed: Duration::ZERO,
        }
    }
}

/// Runs `op` under `policy`, bumping `retries` once per extra attempt.
pub fn retry_io<T>(
    policy: &RetryPolicy,
    retries: &mut u64,
    mut op: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    let started = Instant::now();
    let mut delay = policy.base_delay;
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(value) => return Ok(value),
            Err(err) if err.kind() == io::ErrorKind::Interrupted => {
                // EINTR: the syscall did nothing; go straight back in. The
                // elapsed ceiling still bounds a pathological interrupt
                // storm.
                if started.elapsed() >= policy.max_elapsed {
                    return Err(err);
                }
                *retries += 1;
            }
            Err(err) => {
                attempt += 1;
                if attempt >= policy.max_attempts || started.elapsed() + delay >= policy.max_elapsed
                {
                    return Err(err);
                }
                *retries += 1;
                thread::sleep(delay);
                delay = delay.saturating_mul(2);
            }
        }
    }
}

/// Writes all of `bytes`, retrying transient errors and resuming short
/// writes where they left off.
pub fn write_all_retrying<F: WalFile>(
    file: &mut F,
    mut bytes: &[u8],
    policy: &RetryPolicy,
    retries: &mut u64,
) -> io::Result<()> {
    while !bytes.is_empty() {
        let written = retry_io(policy, retries, || file.append(bytes))?;
        if written == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "device accepted no bytes",
            ));
        }
        bytes = bytes.get(written..).unwrap_or(&[]);
    }
    Ok(())
}

#[cfg(any(test, feature = "fault-injection"))]
mod faults {
    //! Deterministic fault injection. Faults are expressed against the
    //! *global appended byte offset*, so a test can name an exact crash
    //! point ("the disk dies 173 bytes in") independent of how the writer
    //! batches its writes. Written bytes still land in real files — minus
    //! whatever the plan withholds — so recovery reads exactly what a real
    //! crash would have left on disk.

    use super::*;
    use std::sync::{Arc, Mutex};

    /// What the fake disk should do, all deterministic.
    #[derive(Debug, Default, Clone)]
    pub struct FaultPlan {
        /// The disk dies after accepting this many bytes: the append that
        /// crosses the boundary is torn exactly at it, and every later
        /// operation fails.
        pub crash_after_bytes: Option<u64>,
        /// The first N `sync()` calls fail (use `u32::MAX` for "always").
        pub fail_syncs: u32,
        /// The first N appends return `ErrorKind::Interrupted` untouched.
        pub interrupt_first_appends: u32,
        /// Appends accept at most this many bytes (forces short writes).
        pub short_write_cap: Option<usize>,
        /// `(global byte offset, bit index 0..8)` flips applied to bytes as
        /// they are written.
        pub flip_bits: Vec<(u64, u8)>,
        /// Every append fails outright (a dead disk from the start).
        pub fail_appends: bool,
    }

    #[derive(Debug, Default)]
    struct FaultState {
        plan: FaultPlan,
        written: u64,
        crashed: bool,
        syncs_failed: u32,
        appends_interrupted: u32,
    }

    /// A [`WalFs`] that injects the faults described by a [`FaultPlan`]
    /// while passing everything else through to the real filesystem.
    /// Clones share the same fault state, and reads are never faulted —
    /// recovery sees whatever physically landed.
    #[derive(Debug, Clone)]
    pub struct FaultyFs {
        state: Arc<Mutex<FaultState>>,
    }

    impl FaultyFs {
        /// A faulty filesystem following `plan`.
        pub fn new(plan: FaultPlan) -> Self {
            FaultyFs {
                state: Arc::new(Mutex::new(FaultState {
                    plan,
                    ..FaultState::default()
                })),
            }
        }

        /// Total bytes the fake disk has accepted.
        pub fn bytes_written(&self) -> u64 {
            self.state.lock().unwrap().written
        }

        /// Whether the `crash_after_bytes` cliff has been hit.
        pub fn crashed(&self) -> bool {
            self.state.lock().unwrap().crashed
        }
    }

    /// A segment file on the faulty disk.
    #[derive(Debug)]
    pub struct FaultyFile {
        inner: fs::File,
        state: Arc<Mutex<FaultState>>,
    }

    impl WalFile for FaultyFile {
        fn append(&mut self, bytes: &[u8]) -> io::Result<usize> {
            let mut state = self.state.lock().unwrap();
            if state.crashed {
                return Err(io::Error::other("injected: disk is dead"));
            }
            if state.plan.fail_appends {
                return Err(io::Error::other("injected: append failure"));
            }
            if state.appends_interrupted < state.plan.interrupt_first_appends {
                state.appends_interrupted += 1;
                return Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "injected: interrupted syscall",
                ));
            }
            let mut take = bytes.len();
            if let Some(cap) = state.plan.short_write_cap {
                take = take.min(cap.max(1));
            }
            if let Some(cliff) = state.plan.crash_after_bytes {
                let room = cliff.saturating_sub(state.written);
                if (take as u64) > room {
                    take = room as usize;
                    state.crashed = true;
                }
            }
            if take == 0 {
                return Err(io::Error::other("injected: disk died mid-write"));
            }
            let mut chunk = bytes[..take].to_vec();
            for &(offset, bit) in &state.plan.flip_bits {
                if offset >= state.written && offset < state.written + take as u64 {
                    chunk[(offset - state.written) as usize] ^= 1 << (bit % 8);
                }
            }
            self.inner.write_all(&chunk)?;
            state.written += take as u64;
            Ok(take)
        }

        fn sync(&mut self) -> io::Result<()> {
            let mut state = self.state.lock().unwrap();
            if state.crashed {
                return Err(io::Error::other("injected: disk is dead"));
            }
            if state.syncs_failed < state.plan.fail_syncs {
                state.syncs_failed += 1;
                return Err(io::Error::other("injected: fsync failure"));
            }
            self.inner.sync_all()
        }
    }

    impl WalFs for FaultyFs {
        type File = FaultyFile;

        fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
            StdFs.create_dir_all(dir)
        }

        fn open_append(&self, path: &Path) -> io::Result<FaultyFile> {
            Ok(FaultyFile {
                inner: StdFs.open_append(path)?,
                state: Arc::clone(&self.state),
            })
        }

        fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
            StdFs.read(path)
        }

        fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
            StdFs.list(dir)
        }

        fn remove_file(&self, path: &Path) -> io::Result<()> {
            StdFs.remove_file(path)
        }
    }
}

#[cfg(any(test, feature = "fault-injection"))]
pub use faults::{FaultPlan, FaultyFs};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "durability-io-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn retry_recovers_from_transient_errors() {
        let mut retries = 0u64;
        let mut failures_left = 2;
        let result = retry_io(&RetryPolicy::default(), &mut retries, || {
            if failures_left > 0 {
                failures_left -= 1;
                Err(io::Error::other("transient"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(result.unwrap(), 42);
        assert_eq!(retries, 2);
    }

    #[test]
    fn retry_gives_up_after_max_attempts() {
        let mut retries = 0u64;
        let mut calls = 0u32;
        let result: io::Result<()> = retry_io(&RetryPolicy::default(), &mut retries, || {
            calls += 1;
            Err(io::Error::other("permanent"))
        });
        assert!(result.is_err());
        assert_eq!(calls, RetryPolicy::default().max_attempts);
    }

    #[test]
    fn interrupted_syscalls_retry_without_consuming_attempts() {
        let dir = temp_dir("eintr");
        let fs = FaultyFs::new(FaultPlan {
            interrupt_first_appends: 10,
            ..FaultPlan::default()
        });
        let mut file = fs.open_append(&dir.join("seg")).unwrap();
        let mut retries = 0u64;
        write_all_retrying(&mut file, b"hello", &RetryPolicy::default(), &mut retries).unwrap();
        assert_eq!(retries, 10);
        assert_eq!(StdFs.read(&dir.join("seg")).unwrap(), b"hello");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_writes_resume_where_they_left_off() {
        let dir = temp_dir("short");
        let fs = FaultyFs::new(FaultPlan {
            short_write_cap: Some(3),
            ..FaultPlan::default()
        });
        let mut file = fs.open_append(&dir.join("seg")).unwrap();
        let mut retries = 0u64;
        write_all_retrying(
            &mut file,
            b"0123456789",
            &RetryPolicy::default(),
            &mut retries,
        )
        .unwrap();
        assert_eq!(StdFs.read(&dir.join("seg")).unwrap(), b"0123456789");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_cliff_tears_the_write_exactly_at_the_boundary() {
        let dir = temp_dir("cliff");
        let fs = FaultyFs::new(FaultPlan {
            crash_after_bytes: Some(7),
            ..FaultPlan::default()
        });
        let mut file = fs.open_append(&dir.join("seg")).unwrap();
        let mut retries = 0u64;
        let err = write_all_retrying(&mut file, b"0123456789", &RetryPolicy::none(), &mut retries)
            .unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        assert!(fs.crashed());
        assert_eq!(StdFs.read(&dir.join("seg")).unwrap(), b"0123456");
        // The disk stays dead.
        assert!(file.append(b"more").is_err());
        assert!(file.sync().is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flips_land_at_the_requested_offsets() {
        let dir = temp_dir("flip");
        let fs = FaultyFs::new(FaultPlan {
            flip_bits: vec![(1, 0), (4, 7)],
            ..FaultPlan::default()
        });
        let mut file = fs.open_append(&dir.join("seg")).unwrap();
        let mut retries = 0u64;
        write_all_retrying(&mut file, &[0u8; 6], &RetryPolicy::default(), &mut retries).unwrap();
        assert_eq!(
            StdFs.read(&dir.join("seg")).unwrap(),
            vec![0, 1, 0, 0, 0x80, 0]
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_failures_are_injected_then_clear() {
        let dir = temp_dir("sync");
        let fs = FaultyFs::new(FaultPlan {
            fail_syncs: 2,
            ..FaultPlan::default()
        });
        let mut file = fs.open_append(&dir.join("seg")).unwrap();
        assert!(file.sync().is_err());
        assert!(file.sync().is_err());
        assert!(file.sync().is_ok());
        fs::remove_dir_all(&dir).ok();
    }
}
