//! Record framing for WAL segments.
//!
//! Each record is one framed [`StreamEvent`]:
//!
//! ```text
//! ┌────────────┬────────────┬──────────────────────────────┐
//! │ len: u32 LE│ crc: u32 LE│ payload (StreamEvent::encode)│
//! └────────────┴────────────┴──────────────────────────────┘
//! ```
//!
//! `len` is the payload length and `crc` is the CRC-32 of the payload, so a
//! frame is self-validating: a reader can always distinguish *torn tails*
//! (the file ends inside a frame — the normal shape after a crash, truncated
//! at the last valid record) from *corruption* (a full frame is present but
//! its CRC or payload is wrong — replay must stop). [`scan_segment`] makes
//! exactly that distinction.

use interval_core::StreamEvent;

use crate::crc32::crc32;

/// Bytes of framing (`len` + `crc`) in front of every payload.
pub const FRAME_HEADER_LEN: usize = 8;

/// Upper bound on a single record's payload. Real records are tens of
/// bytes; anything near this is a corrupt length field, and the cap keeps a
/// scanner from treating garbage as a plausible multi-gigabyte frame.
pub const MAX_RECORD_LEN: usize = 1 << 20;

/// Appends the framed encoding of `event` to `out` and returns the number
/// of bytes appended.
pub fn frame_record(event: &StreamEvent, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    // Reserve the header, encode in place, then backfill len + crc.
    out.extend_from_slice(&[0u8; FRAME_HEADER_LEN]);
    event.encode(out);
    let payload_len = out.len() - start - FRAME_HEADER_LEN;
    let crc = crc32(&out[start + FRAME_HEADER_LEN..]);
    out[start..start + 4].copy_from_slice(&(payload_len as u32).to_le_bytes());
    out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
    out.len() - start
}

/// Why a scan stopped replaying before the end of a segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanCorruption {
    /// Byte offset of the corrupt frame within the segment.
    pub offset: u64,
    /// Human-readable reason (CRC mismatch, undecodable payload, absurd
    /// length field).
    pub reason: String,
}

/// The outcome of scanning one segment's bytes.
#[derive(Debug, Default)]
pub struct SegmentScan {
    /// Every record validated and decoded before the scan stopped.
    pub records: Vec<StreamEvent>,
    /// Bytes of valid frames from the start of the segment.
    pub clean_len: u64,
    /// Trailing bytes of an incomplete final frame — the normal shape after
    /// a crash mid-write. Zero for a cleanly closed segment.
    pub torn_tail_bytes: u64,
    /// First corrupt frame, if any. Everything at and after `offset` is
    /// untrusted.
    pub corruption: Option<ScanCorruption>,
    /// Well-formed frames found *after* the first corruption (counted so a
    /// recovery report can say how many records were dropped, never
    /// replayed).
    pub records_dropped: u64,
    /// Bytes at and after the first corruption (or torn tail) that were not
    /// replayed.
    pub bytes_dropped: u64,
}

/// Reads one frame at `pos`. `Ok(None)` means the bytes end inside the
/// frame (torn tail); `Err` carries a corruption reason.
fn read_frame(bytes: &[u8], pos: usize) -> Result<Option<(StreamEvent, usize)>, String> {
    let remaining = bytes.len() - pos;
    if remaining < FRAME_HEADER_LEN {
        return Ok(None);
    }
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&bytes[pos..pos + 4]);
    let len = u32::from_le_bytes(raw) as usize;
    raw.copy_from_slice(&bytes[pos + 4..pos + 8]);
    let expected_crc = u32::from_le_bytes(raw);
    if len > MAX_RECORD_LEN {
        return Err(format!(
            "length field {len} exceeds the {MAX_RECORD_LEN}-byte record cap"
        ));
    }
    if remaining < FRAME_HEADER_LEN + len {
        return Ok(None);
    }
    let payload = &bytes[pos + FRAME_HEADER_LEN..pos + FRAME_HEADER_LEN + len];
    let actual_crc = crc32(payload);
    if actual_crc != expected_crc {
        return Err(format!(
            "CRC mismatch: stored {expected_crc:#010x}, computed {actual_crc:#010x}"
        ));
    }
    match StreamEvent::decode(payload) {
        Ok(event) => Ok(Some((event, FRAME_HEADER_LEN + len))),
        Err(err) => Err(format!("undecodable payload: {err}")),
    }
}

/// Scans a segment's bytes frame by frame.
///
/// Replay semantics: records are trusted up to the first problem. A torn
/// tail truncates (normal after a crash); a corrupt frame stops replay at
/// its offset, after which the scanner keeps walking frames only to *count*
/// what was lost (`records_dropped`) — a payload bit flip leaves the length
/// fields intact, so the count is usually exact.
pub fn scan_segment(bytes: &[u8]) -> SegmentScan {
    let mut scan = SegmentScan::default();
    let mut pos = 0usize;
    while pos < bytes.len() {
        match read_frame(bytes, pos) {
            Ok(Some((event, frame_len))) => {
                scan.records.push(event);
                pos += frame_len;
                scan.clean_len = pos as u64;
            }
            Ok(None) => {
                scan.torn_tail_bytes = (bytes.len() - pos) as u64;
                break;
            }
            Err(reason) => {
                scan.corruption = Some(ScanCorruption {
                    offset: pos as u64,
                    reason,
                });
                break;
            }
        }
    }
    if let Some(corruption) = &scan.corruption {
        scan.bytes_dropped = bytes.len() as u64 - corruption.offset;
        // Count (but never replay) well-formed frames past the corruption:
        // the frame structure usually survives a payload flip, so resync at
        // the next length field and keep walking until it stops making
        // sense.
        let mut pos = corruption.offset as usize;
        if let Some(skip) = frame_len_at(bytes, pos) {
            pos += skip;
            while pos < bytes.len() {
                match read_frame(bytes, pos) {
                    Ok(Some((_, frame_len))) => {
                        scan.records_dropped += 1;
                        pos += frame_len;
                    }
                    _ => break,
                }
            }
        }
    } else {
        scan.bytes_dropped = scan.torn_tail_bytes;
    }
    scan
}

/// The full frame length implied by the header at `pos`, if one is present
/// and plausible.
fn frame_len_at(bytes: &[u8], pos: usize) -> Option<usize> {
    if bytes.len() - pos < FRAME_HEADER_LEN {
        return None;
    }
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&bytes[pos..pos + 4]);
    let len = u32::from_le_bytes(raw) as usize;
    if len > MAX_RECORD_LEN || bytes.len() - pos < FRAME_HEADER_LEN + len {
        return None;
    }
    Some(FRAME_HEADER_LEN + len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<StreamEvent> {
        vec![
            StreamEvent::Interval {
                sequence: 1,
                symbol: "fever".into(),
                start: 0,
                end: 5,
            },
            StreamEvent::Open {
                sequence: 2,
                symbol: "rash".into(),
                at: 3,
            },
            StreamEvent::Close {
                sequence: 2,
                symbol: "rash".into(),
                at: 9,
            },
            StreamEvent::Watermark(10),
        ]
    }

    fn framed(events: &[StreamEvent]) -> Vec<u8> {
        let mut out = Vec::new();
        for event in events {
            frame_record(event, &mut out);
        }
        out
    }

    #[test]
    fn clean_segment_round_trips() {
        let events = sample_events();
        let bytes = framed(&events);
        let scan = scan_segment(&bytes);
        assert_eq!(scan.records, events);
        assert_eq!(scan.clean_len, bytes.len() as u64);
        assert_eq!(scan.torn_tail_bytes, 0);
        assert!(scan.corruption.is_none());
        assert_eq!(scan.bytes_dropped, 0);
    }

    #[test]
    fn torn_tail_truncates_at_last_valid_record() {
        let events = sample_events();
        let bytes = framed(&events);
        // Cut the final frame short by a few bytes — and also try cutting
        // inside the header itself.
        for cut in [bytes.len() - 3, bytes.len() - 12] {
            let scan = scan_segment(&bytes[..cut]);
            assert_eq!(scan.records, events[..events.len() - 1]);
            assert_eq!(scan.torn_tail_bytes, (cut as u64) - scan.clean_len);
            assert!(scan.corruption.is_none());
        }
    }

    #[test]
    fn bit_flip_stops_at_first_bad_crc_and_counts_the_drops() {
        let events = sample_events();
        let mut bytes = framed(&events);
        // Flip one payload bit inside the second frame.
        let first_len = {
            let mut out = Vec::new();
            frame_record(&events[0], &mut out);
            out.len()
        };
        bytes[first_len + FRAME_HEADER_LEN] ^= 0x01;
        let scan = scan_segment(&bytes);
        assert_eq!(scan.records, events[..1]);
        let corruption = scan.corruption.expect("flip must be detected");
        assert_eq!(corruption.offset, first_len as u64);
        assert!(corruption.reason.contains("CRC mismatch"), "{corruption:?}");
        // The two frames after the corrupt one are structurally intact and
        // counted as dropped.
        assert_eq!(scan.records_dropped, 2);
        assert_eq!(scan.bytes_dropped, (bytes.len() - first_len) as u64);
    }

    #[test]
    fn absurd_length_field_is_corruption_not_torn_tail() {
        let events = sample_events();
        let mut bytes = framed(&events);
        bytes[3] = 0xFF; // len's high byte: frame now claims >16 MiB
        let scan = scan_segment(&bytes);
        assert!(scan.records.is_empty());
        let corruption = scan.corruption.expect("absurd length is corruption");
        assert_eq!(corruption.offset, 0);
        assert!(corruption.reason.contains("record cap"), "{corruption:?}");
    }

    #[test]
    fn payload_validation_rejects_degenerate_interval() {
        // A frame whose CRC is fine but whose payload decodes to a
        // start >= end interval is corruption, not data.
        let mut payload = Vec::new();
        StreamEvent::Interval {
            sequence: 1,
            symbol: "x".into(),
            start: 4,
            end: 9,
        }
        .encode(&mut payload);
        // start/end live at offsets 9..17 and 17..25; make end < start.
        payload[17..25].copy_from_slice(&1i64.to_le_bytes());
        let mut bytes = (payload.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let scan = scan_segment(&bytes);
        assert!(scan.records.is_empty());
        let corruption = scan.corruption.expect("degenerate payload rejected");
        assert!(
            corruption.reason.contains("undecodable payload"),
            "{corruption:?}"
        );
    }

    #[test]
    fn empty_segment_scans_clean() {
        let scan = scan_segment(&[]);
        assert!(scan.records.is_empty());
        assert_eq!(scan.clean_len, 0);
        assert!(scan.corruption.is_none());
        assert_eq!(scan.torn_tail_bytes, 0);
    }
}
