//! Crash-safe durability for the streaming tier.
//!
//! The streaming window (`stream::SlidingWindowDatabase`) lives entirely in
//! RAM; this crate makes it survive crashes and misbehaving disks:
//!
//! - [`wal::WalWriter`] — an append-only write-ahead log of
//!   [`interval_core::StreamEvent`]s with per-record CRC32 + length framing
//!   ([`record`]) and epoch-based segment rotation tied to watermark
//!   progress. Sealed segments are immutable; segments whose every record
//!   has fallen behind the eviction cutoff are reclaimable.
//! - [`recovery::scan_wal`] — recovery-by-replay: scans segments in order,
//!   truncates a torn tail at the last valid record, stops at the first bad
//!   CRC mid-file, and reports both in a structured
//!   [`recovery::RecoveryReport`].
//! - [`io`] — the small filesystem trait the WAL writes through, a
//!   retry-with-bounded-backoff policy for transient write errors, and (with
//!   the `fault-injection` feature or under `cfg(test)`) a deterministic
//!   faulty-filesystem shim for crash-point tests.
//!
//! The crate deliberately stops below the window: replaying recovered
//! events into a `SlidingWindowDatabase` lives in `stream::durable`, which
//! also owns graceful degradation (sticky `degraded` flag on persistent
//! write failure). See `docs/DURABILITY.md` for the record format, the
//! fsync policy trade-offs and the recovery semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc32;
pub mod io;
pub mod record;
pub mod recovery;
pub mod wal;

pub use crc32::crc32;
pub use io::{retry_io, write_all_retrying, RetryPolicy, StdFs, WalFile, WalFs};
pub use record::{frame_record, SegmentScan};
pub use recovery::{scan_wal, Corruption, RecoveryReport};
pub use wal::{FsyncPolicy, WalError, WalOptions, WalStats, WalWriter};

#[cfg(any(test, feature = "fault-injection"))]
pub use io::{FaultPlan, FaultyFs};
