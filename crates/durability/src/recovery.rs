//! Recovery-by-replay: turning a WAL directory back into an event stream.
//!
//! [`scan_wal`] walks segments in index order and validates every frame.
//! Two failure shapes are deliberately kept apart:
//!
//! - a **torn tail** — the *last* segment ends inside a frame, the normal
//!   result of crashing mid-write. The tail is truncated at the last valid
//!   record and recovery is still clean;
//! - **corruption** — a bad CRC, an undecodable payload, an absurd length
//!   field, or a torn tail in a *sealed* (non-final) segment. Replay stops
//!   at the first corrupt byte; everything after is only counted, never
//!   trusted.
//!
//! Both outcomes are reported in a structured [`RecoveryReport`] so callers
//! (the `recover` subcommand, the crash-point tests) can distinguish "clean
//! crash" from "lost data" and choose exit codes accordingly.

use std::path::{Path, PathBuf};

use interval_core::StreamEvent;

use crate::io::WalFs;
use crate::record::scan_segment;
use crate::wal::{segment_index, WalError};

/// Where and why replay stopped trusting the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Corruption {
    /// The corrupt segment's path.
    pub segment: PathBuf,
    /// Byte offset of the first bad frame within that segment.
    pub offset: u64,
    /// Human-readable cause.
    pub reason: String,
}

/// What a recovery scan found, in counters.
#[derive(Debug, Default, Clone)]
pub struct RecoveryReport {
    /// Segment files scanned.
    pub segments: usize,
    /// Total bytes scanned across all segments.
    pub bytes_scanned: u64,
    /// Records validated and handed to replay.
    pub records_replayed: u64,
    /// Well-formed records found after the first corruption — present on
    /// disk but never replayed.
    pub records_dropped: u64,
    /// Bytes discarded at and after the first corruption (plus torn
    /// tails).
    pub bytes_dropped: u64,
    /// Bytes of the final segment's torn tail (zero on a clean shutdown).
    pub torn_tail_bytes: u64,
    /// The first corruption, if any.
    pub corruption: Option<Corruption>,
}

impl RecoveryReport {
    /// True when nothing worse than a torn tail was found: every record
    /// that reached the disk intact was replayed.
    pub fn is_clean(&self) -> bool {
        self.corruption.is_none()
    }
}

/// Scans every segment under `dir` and returns the replayable events plus
/// the report. The directory may be empty (an empty log recovers to an
/// empty stream); a missing directory is an error.
pub fn scan_wal<F: WalFs>(
    fs: &F,
    dir: &Path,
) -> Result<(Vec<StreamEvent>, RecoveryReport), WalError> {
    let mut segments: Vec<(u64, PathBuf)> = fs
        .list(dir)
        .map_err(|e| WalError::new(format!("listing WAL directory {}", dir.display()), e))?
        .into_iter()
        .filter_map(|p| segment_index(&p).map(|i| (i, p)))
        .collect();
    segments.sort();

    let mut events = Vec::new();
    let mut report = RecoveryReport {
        segments: segments.len(),
        ..RecoveryReport::default()
    };
    let last = segments.len().saturating_sub(1);
    for (position, (_, path)) in segments.iter().enumerate() {
        let bytes = fs
            .read(path)
            .map_err(|e| WalError::new(format!("reading segment {}", path.display()), e))?;
        report.bytes_scanned += bytes.len() as u64;
        if report.corruption.is_some() {
            // Already stopped: only count what the rest of the log holds.
            let scan = scan_segment(&bytes);
            report.records_dropped += scan.records.len() as u64 + scan.records_dropped;
            report.bytes_dropped += bytes.len() as u64;
            continue;
        }
        let scan = scan_segment(&bytes);
        let torn_in_sealed = scan.torn_tail_bytes > 0 && position != last;
        if let Some(corruption) = scan.corruption {
            report.corruption = Some(Corruption {
                segment: path.clone(),
                offset: corruption.offset,
                reason: corruption.reason,
            });
        } else if torn_in_sealed {
            // Sealed segments are immutable and complete by contract; a
            // partial frame inside one is loss, not a crash artifact.
            report.corruption = Some(Corruption {
                segment: path.clone(),
                offset: scan.clean_len,
                reason: format!(
                    "sealed segment ends inside a frame ({} trailing bytes)",
                    scan.torn_tail_bytes
                ),
            });
        }
        events.extend(scan.records);
        report.records_replayed = events.len() as u64;
        report.records_dropped += scan.records_dropped;
        report.bytes_dropped += scan.bytes_dropped;
        if position == last {
            report.torn_tail_bytes = scan.torn_tail_bytes;
        }
    }
    Ok((events, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::StdFs;
    use crate::record::frame_record;
    use crate::wal::segment_file_name;
    use std::fs;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "durability-recovery-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn watermark_frames(times: &[i64]) -> Vec<u8> {
        let mut out = Vec::new();
        for &t in times {
            frame_record(&StreamEvent::Watermark(t), &mut out);
        }
        out
    }

    #[test]
    fn empty_directory_recovers_to_an_empty_stream() {
        let dir = temp_dir("empty");
        let (events, report) = scan_wal(&StdFs, &dir).unwrap();
        assert!(events.is_empty());
        assert_eq!(report.segments, 0);
        assert!(report.is_clean());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_is_an_error() {
        let dir = temp_dir("missing").join("nope");
        assert!(scan_wal(&StdFs, &dir).is_err());
    }

    #[test]
    fn non_wal_files_are_ignored() {
        let dir = temp_dir("ignore");
        fs::write(dir.join(segment_file_name(1)), watermark_frames(&[5])).unwrap();
        fs::write(dir.join("notes.txt"), b"not a segment").unwrap();
        let (events, report) = scan_wal(&StdFs, &dir).unwrap();
        assert_eq!(events, vec![StreamEvent::Watermark(5)]);
        assert_eq!(report.segments, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_in_the_final_segment_is_clean() {
        let dir = temp_dir("torn-final");
        let mut bytes = watermark_frames(&[5, 6]);
        bytes.truncate(bytes.len() - 4);
        fs::write(dir.join(segment_file_name(1)), &bytes).unwrap();
        let (events, report) = scan_wal(&StdFs, &dir).unwrap();
        assert_eq!(events, vec![StreamEvent::Watermark(5)]);
        assert!(report.is_clean());
        assert_eq!(report.torn_tail_bytes, 13);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_in_a_sealed_segment_is_corruption() {
        let dir = temp_dir("torn-sealed");
        let mut first = watermark_frames(&[5, 6]);
        first.truncate(first.len() - 4);
        fs::write(dir.join(segment_file_name(1)), &first).unwrap();
        fs::write(dir.join(segment_file_name(2)), watermark_frames(&[7])).unwrap();
        let (events, report) = scan_wal(&StdFs, &dir).unwrap();
        // Replay stops at the sealed segment's partial frame; segment 2's
        // intact record is counted, not replayed.
        assert_eq!(events, vec![StreamEvent::Watermark(5)]);
        let corruption = report.corruption.clone().expect("sealed torn tail");
        assert!(
            corruption.reason.contains("sealed segment"),
            "{corruption:?}"
        );
        assert_eq!(report.records_dropped, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_stops_replay_across_segments() {
        let dir = temp_dir("corrupt");
        let mut first = watermark_frames(&[5, 6]);
        first[crate::record::FRAME_HEADER_LEN] ^= 0x40; // flip a payload bit in record 1
        fs::write(dir.join(segment_file_name(1)), &first).unwrap();
        fs::write(dir.join(segment_file_name(2)), watermark_frames(&[7, 8])).unwrap();
        let (events, report) = scan_wal(&StdFs, &dir).unwrap();
        assert!(events.is_empty());
        let corruption = report.corruption.clone().expect("flip detected");
        assert_eq!(corruption.offset, 0);
        // Dropped: the intact second record of segment 1 + both of segment 2.
        assert_eq!(report.records_dropped, 3);
        assert!(!report.is_clean());
        fs::remove_dir_all(&dir).ok();
    }
}
