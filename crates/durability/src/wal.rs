//! The append-only write-ahead log.
//!
//! A WAL directory holds numbered segment files (`00000000.wal`,
//! `00000001.wal`, …), each a concatenation of framed records
//! ([`crate::record`]). Exactly one segment is open for appending at a
//! time; rotation is tied to watermark progress — when the watermark has
//! advanced `rotate_every` stream-time past the segment's base watermark,
//! the segment is sealed (flushed, fsynced, never written again) and a new
//! one starts. Sealing at watermarks is what makes old segments
//! reclaimable: once the eviction cutoff passes everything a sealed
//! segment contains, replay no longer needs it (see [`WalWriter::reclaim`]).
//!
//! Every segment after the first begins with a synthetic watermark record
//! carrying the rotation watermark, so a replay that starts at any segment
//! boundary (after reclamation) immediately re-establishes the correct
//! eviction cutoff instead of accepting stale events.
//!
//! Writes are buffered in memory and pushed to the OS at watermark
//! boundaries (or when the buffer crosses a size threshold); how often the
//! log reaches *stable storage* is the [`FsyncPolicy`]'s call. See
//! `docs/DURABILITY.md` for the trade-off table.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use interval_core::{StreamEvent, Time};

use crate::io::{retry_io, write_all_retrying, RetryPolicy, StdFs, WalFile, WalFs};
use crate::record::frame_record;

/// Buffered bytes that force a write to the OS even between watermarks.
const WRITE_THRESHOLD: usize = 64 * 1024;

/// How often appended records are pushed to *stable storage*.
///
/// Everything always reaches the OS page cache at watermark boundaries;
/// the policy only decides when `fsync` is paid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every appended record. Maximum durability, maximum cost.
    Always,
    /// Fsync when a segment seals (one epoch of watermark progress) and on
    /// explicit flush. A crash loses at most the current epoch.
    Epoch,
    /// Never fsync; durability is whatever the OS happens to have written.
    Never,
}

impl FsyncPolicy {
    /// The accepted `--fsync` spellings, for validation and did-you-mean.
    pub const NAMES: &'static [&'static str] = &["always", "epoch", "never"];

    /// Parses a `--fsync` value.
    pub fn parse(value: &str) -> Option<FsyncPolicy> {
        match value {
            "always" => Some(FsyncPolicy::Always),
            "epoch" => Some(FsyncPolicy::Epoch),
            "never" => Some(FsyncPolicy::Never),
            _ => None,
        }
    }

    /// The canonical spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Epoch => "epoch",
            FsyncPolicy::Never => "never",
        }
    }
}

/// Tunables for a [`WalWriter`].
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// When to fsync (default: [`FsyncPolicy::Epoch`]).
    pub policy: FsyncPolicy,
    /// Retry/backoff for transient write errors.
    pub retry: RetryPolicy,
    /// Stream-time of watermark progress between segment rotations.
    /// Callers normally pass the sliding-window length so that one sealed
    /// segment ≈ one evictable epoch.
    pub rotate_every: Time,
}

impl WalOptions {
    /// Epoch fsync, default retries, rotation every `rotate_every` of
    /// watermark progress.
    pub fn new(rotate_every: Time) -> Self {
        WalOptions {
            policy: FsyncPolicy::Epoch,
            retry: RetryPolicy::default(),
            rotate_every: rotate_every.max(1),
        }
    }
}

/// Counters a [`WalWriter`] maintains; cheap to copy into reports.
#[derive(Debug, Default, Clone, Copy)]
pub struct WalStats {
    /// Records appended by the caller (synthetic segment-leading
    /// watermarks are not counted).
    pub records_appended: u64,
    /// Total framed bytes handed to the filesystem.
    pub bytes_written: u64,
    /// Buffer flushes to the OS (write syscall batches).
    pub writes: u64,
    /// `fsync` calls issued.
    pub syncs: u64,
    /// Segments sealed by rotation.
    pub segments_sealed: u64,
    /// Sealed segments deleted by [`WalWriter::reclaim`].
    pub segments_reclaimed: u64,
    /// Extra attempts spent retrying transient I/O errors.
    pub retries: u64,
}

/// A failed WAL operation: what the log was doing plus the I/O error.
#[derive(Debug)]
pub struct WalError {
    context: String,
    source: io::Error,
}

impl WalError {
    /// Wraps `source` with a description of the failed operation.
    pub fn new(context: impl Into<String>, source: io::Error) -> Self {
        WalError {
            context: context.into(),
            source,
        }
    }

    /// What the log was doing when it failed.
    pub fn context(&self) -> &str {
        &self.context
    }
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.context, self.source)
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// A sealed (immutable) segment the writer still knows about.
#[derive(Debug, Clone)]
pub struct SealedSegment {
    /// The segment's index (its file is `{index:08}.wal`).
    pub index: u64,
    /// Path of the sealed file.
    pub path: PathBuf,
    /// Largest event time of any record in the segment.
    pub max_time: Time,
    /// Open endpoints without a matching close at seal time, across the
    /// whole log so far. Reclamation requires a prefix that ends at zero —
    /// otherwise a later `close` would replay without its `open`.
    pub open_depth: u64,
}

/// The append-only writer: one open segment, buffered framing, rotation,
/// and reclamation. Generic over [`WalFs`] so crash-point tests can inject
/// faults; production uses [`StdFs`].
#[derive(Debug)]
pub struct WalWriter<F: WalFs = StdFs> {
    fs: F,
    dir: PathBuf,
    opts: WalOptions,
    file: Option<F::File>,
    segment_index: u64,
    segment_base: Option<Time>,
    segment_max_time: Option<Time>,
    sealed: Vec<SealedSegment>,
    buf: Vec<u8>,
    last_watermark: Option<Time>,
    open_depth: u64,
    stats: WalStats,
    poisoned: bool,
}

/// The largest time a record pins in the log (an interval is live until
/// its end).
fn event_max_time(event: &StreamEvent) -> Time {
    match *event {
        StreamEvent::Open { at, .. } | StreamEvent::Close { at, .. } => at,
        StreamEvent::Interval { end, .. } => end,
        StreamEvent::Watermark(at) => at,
    }
}

/// Parses a segment file name (`{index:08}.wal`) back into its index.
pub fn segment_index(path: &Path) -> Option<u64> {
    if path.extension()? != "wal" {
        return None;
    }
    path.file_stem()?.to_str()?.parse().ok()
}

/// The file name for segment `index`.
pub fn segment_file_name(index: u64) -> String {
    format!("{index:08}.wal")
}

impl WalWriter<StdFs> {
    /// Opens (or creates) a WAL directory on the real filesystem.
    pub fn open(dir: impl Into<PathBuf>, opts: WalOptions) -> Result<Self, WalError> {
        WalWriter::open_with(StdFs, dir, opts)
    }
}

impl<F: WalFs> WalWriter<F> {
    /// Opens (or creates) a WAL directory on an explicit filesystem.
    ///
    /// Existing segments are left untouched and treated as sealed by the
    /// restart; appending continues in a fresh segment numbered after the
    /// highest already present.
    pub fn open_with(fs: F, dir: impl Into<PathBuf>, opts: WalOptions) -> Result<Self, WalError> {
        let dir = dir.into();
        fs.create_dir_all(&dir)
            .map_err(|e| WalError::new(format!("creating WAL directory {}", dir.display()), e))?;
        let existing_max = fs
            .list(&dir)
            .map_err(|e| WalError::new(format!("listing WAL directory {}", dir.display()), e))?
            .iter()
            .filter_map(|p| segment_index(p))
            .max();
        Ok(WalWriter {
            fs,
            dir,
            opts,
            file: None,
            segment_index: existing_max.map_or(0, |i| i + 1),
            segment_base: None,
            segment_max_time: None,
            sealed: Vec::new(),
            buf: Vec::new(),
            last_watermark: None,
            open_depth: 0,
            stats: WalStats::default(),
            poisoned: false,
        })
    }

    /// The directory this log writes to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Counter snapshot.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Segments sealed (and not yet reclaimed) during this writer's life.
    pub fn sealed_segments(&self) -> &[SealedSegment] {
        &self.sealed
    }

    /// Appends one event.
    ///
    /// Under [`FsyncPolicy::Always`] the record is on stable storage when
    /// this returns; otherwise it is buffered and reaches the OS when the
    /// buffer fills or the segment seals (and stable storage per the
    /// policy). A watermark event may seal the current segment and start
    /// the next one.
    ///
    /// On error the writer is poisoned — every later call fails fast with
    /// the same context — because a partially flushed buffer can no longer
    /// be retried without risking duplicated half-frames. Callers degrade
    /// to in-memory ingestion instead (see `stream::durable::Journal`).
    pub fn append(&mut self, event: &StreamEvent) -> Result<(), WalError> {
        self.check_poison()?;
        self.ensure_segment().map_err(|e| self.poison(e))?;
        frame_record(event, &mut self.buf);
        self.stats.records_appended += 1;
        let at = event_max_time(event);
        if self.segment_max_time < Some(at) {
            self.segment_max_time = Some(at);
        }
        match event {
            StreamEvent::Open { .. } => self.open_depth += 1,
            StreamEvent::Close { .. } => self.open_depth = self.open_depth.saturating_sub(1),
            _ => {}
        }
        let result = match *event {
            StreamEvent::Watermark(w) => self.note_watermark(w),
            _ => {
                if self.opts.policy == FsyncPolicy::Always {
                    self.write_buffer().and_then(|()| self.sync())
                } else if self.buf.len() >= WRITE_THRESHOLD {
                    self.write_buffer()
                } else {
                    Ok(())
                }
            }
        };
        result.map_err(|e| self.poison(e))
    }

    /// Pushes everything buffered to the OS and — unless the policy is
    /// [`FsyncPolicy::Never`] — to stable storage. Called by the stream's
    /// shutdown path so a clean exit never leaves an unsynced tail.
    pub fn flush(&mut self) -> Result<(), WalError> {
        self.check_poison()?;
        let result = self.write_buffer().and_then(|()| {
            if self.opts.policy == FsyncPolicy::Never {
                Ok(())
            } else {
                self.sync()
            }
        });
        result.map_err(|e| self.poison(e))
    }

    /// Deletes the longest reclaimable prefix of sealed segments and
    /// returns how many were removed.
    ///
    /// A prefix is reclaimable when every segment in it has
    /// `max_time < cutoff` (everything it pins is already evicted) and the
    /// prefix ends at `open_depth == 0` (no `close` left behind without its
    /// `open`). Replay of the surviving suffix starts at a synthetic
    /// watermark, so the cutoff is re-established before any event is
    /// considered.
    pub fn reclaim(&mut self, cutoff: Time) -> Result<usize, WalError> {
        let mut take = 0usize;
        for (i, seg) in self.sealed.iter().enumerate() {
            if seg.max_time >= cutoff {
                break;
            }
            if seg.open_depth == 0 {
                take = i + 1;
            }
        }
        for seg in self.sealed.drain(..take) {
            self.fs.remove_file(&seg.path).map_err(|e| {
                WalError::new(format!("reclaiming segment {}", seg.path.display()), e)
            })?;
            self.stats.segments_reclaimed += 1;
        }
        Ok(take)
    }

    fn check_poison(&self) -> Result<(), WalError> {
        if self.poisoned {
            Err(WalError::new(
                "write-ahead log is poisoned by an earlier failure",
                io::Error::other("log disabled"),
            ))
        } else {
            Ok(())
        }
    }

    fn poison(&mut self, err: WalError) -> WalError {
        self.poisoned = true;
        err
    }

    fn current_path(&self) -> PathBuf {
        self.dir.join(segment_file_name(self.segment_index))
    }

    /// Opens the current segment file if none is open, framing the
    /// synthetic leading watermark that makes the segment self-describing.
    fn ensure_segment(&mut self) -> Result<(), WalError> {
        if self.file.is_some() {
            return Ok(());
        }
        let path = self.current_path();
        let mut retries = 0u64;
        let file = retry_io(&self.opts.retry, &mut retries, || {
            self.fs.open_append(&path)
        })
        .map_err(|e| WalError::new(format!("opening segment {}", path.display()), e))?;
        self.stats.retries += retries;
        self.file = Some(file);
        if let Some(w) = self.last_watermark {
            frame_record(&StreamEvent::Watermark(w), &mut self.buf);
            self.segment_base = Some(w);
            self.segment_max_time = Some(w);
        }
        Ok(())
    }

    fn write_buffer(&mut self) -> Result<(), WalError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let Some(file) = self.file.as_mut() else {
            return Ok(());
        };
        let mut retries = 0u64;
        let result = write_all_retrying(file, &self.buf, &self.opts.retry, &mut retries);
        self.stats.retries += retries;
        result.map_err(|e| {
            WalError::new(
                format!("appending to segment {}", self.current_path().display()),
                e,
            )
        })?;
        self.stats.bytes_written += self.buf.len() as u64;
        self.stats.writes += 1;
        self.buf.clear();
        Ok(())
    }

    fn sync(&mut self) -> Result<(), WalError> {
        let Some(file) = self.file.as_mut() else {
            return Ok(());
        };
        let mut retries = 0u64;
        let result = retry_io(&self.opts.retry, &mut retries, || file.sync());
        self.stats.retries += retries;
        result.map_err(|e| {
            WalError::new(
                format!("fsyncing segment {}", self.current_path().display()),
                e,
            )
        })?;
        self.stats.syncs += 1;
        Ok(())
    }

    /// Watermark bookkeeping: rotate when the epoch is over, otherwise
    /// write/sync only as the policy demands.
    fn note_watermark(&mut self, w: Time) -> Result<(), WalError> {
        if self.last_watermark < Some(w) {
            self.last_watermark = Some(w);
        }
        let base = *self.segment_base.get_or_insert(w);
        let rotate = w.saturating_sub(base) >= self.opts.rotate_every;
        if rotate {
            self.seal()?;
        } else if self.opts.policy == FsyncPolicy::Always {
            self.write_buffer()?;
            self.sync()?;
        } else if self.buf.len() >= WRITE_THRESHOLD {
            // No fsync follows under the lazier policies, so a per-watermark
            // write() would buy a syscall without buying durability; bytes
            // move at the threshold or when the epoch seals.
            self.write_buffer()?;
        }
        Ok(())
    }

    /// Flushes, fsyncs (unless the policy is `Never`), and closes the
    /// current segment; the next append starts the following one.
    fn seal(&mut self) -> Result<(), WalError> {
        self.write_buffer()?;
        if self.opts.policy != FsyncPolicy::Never {
            self.sync()?;
        }
        if self.file.take().is_some() {
            self.sealed.push(SealedSegment {
                index: self.segment_index,
                path: self.current_path(),
                max_time: self.segment_max_time.unwrap_or(Time::MIN),
                open_depth: self.open_depth,
            });
            self.stats.segments_sealed += 1;
            self.segment_index += 1;
        }
        self.segment_base = self.last_watermark;
        self.segment_max_time = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{FaultPlan, FaultyFs};
    use crate::recovery::scan_wal;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "durability-wal-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn interval(sequence: u64, symbol: &str, start: Time, end: Time) -> StreamEvent {
        StreamEvent::Interval {
            sequence,
            symbol: symbol.into(),
            start,
            end,
        }
    }

    #[test]
    fn policy_parsing_round_trips() {
        for name in FsyncPolicy::NAMES {
            assert_eq!(FsyncPolicy::parse(name).unwrap().as_str(), *name);
        }
        assert!(FsyncPolicy::parse("epcoh").is_none());
    }

    #[test]
    fn append_flush_scan_round_trips() {
        let dir = temp_dir("roundtrip");
        let mut wal = WalWriter::open(&dir, WalOptions::new(100)).unwrap();
        let events = vec![
            interval(1, "a", 0, 5),
            interval(2, "b", 1, 6),
            StreamEvent::Watermark(10),
        ];
        for event in &events {
            wal.append(event).unwrap();
        }
        wal.flush().unwrap();
        assert_eq!(wal.stats().records_appended, 3);
        let (replayed, report) = scan_wal(&StdFs, &dir).unwrap();
        assert_eq!(replayed, events);
        assert_eq!(report.records_replayed, 3);
        assert!(report.corruption.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_seals_and_leads_new_segments_with_a_watermark() {
        let dir = temp_dir("rotate");
        let mut wal = WalWriter::open(&dir, WalOptions::new(10)).unwrap();
        let mut events = Vec::new();
        for epoch in 0..3i64 {
            let t = epoch * 10;
            events.push(interval(epoch as u64, "x", t, t + 3));
            events.push(StreamEvent::Watermark(t + 10));
        }
        for event in &events {
            wal.append(event).unwrap();
        }
        wal.flush().unwrap();
        assert_eq!(wal.stats().segments_sealed, 2);
        assert_eq!(wal.sealed_segments().len(), 2);

        let (replayed, report) = scan_wal(&StdFs, &dir).unwrap();
        // Two sealed segments plus nothing else: the final watermark sealed
        // the log without opening an empty successor file.
        assert_eq!(report.segments, 2);
        // Replay = original events plus one synthetic leading watermark per
        // later segment, in order; the synthetic records repeat the
        // rotation watermark so they change nothing when re-ingested.
        let originals: Vec<&StreamEvent> = replayed
            .iter()
            .enumerate()
            .filter(|&(i, e)| {
                // Synthetic = a watermark equal to its predecessor.
                !(i > 0 && matches!(e, StreamEvent::Watermark(w) if replayed[i - 1] == StreamEvent::Watermark(*w)))
            })
            .map(|(_, e)| e)
            .collect();
        assert_eq!(originals, events.iter().collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reclaim_removes_only_fully_evicted_prefixes() {
        let dir = temp_dir("reclaim");
        let mut wal = WalWriter::open(&dir, WalOptions::new(10)).unwrap();
        for epoch in 0..4i64 {
            let t = epoch * 10;
            wal.append(&interval(epoch as u64, "x", t, t + 3)).unwrap();
            wal.append(&StreamEvent::Watermark(t + 10)).unwrap();
        }
        wal.flush().unwrap();
        assert_eq!(wal.sealed_segments().len(), 3);

        // Nothing is reclaimable below the first segment's max time.
        assert_eq!(wal.reclaim(5).unwrap(), 0);
        // A cutoff past the first two segments reclaims exactly those.
        let max_times: Vec<Time> = wal.sealed_segments().iter().map(|s| s.max_time).collect();
        assert_eq!(wal.reclaim(max_times[1] + 1).unwrap(), 2);
        assert_eq!(wal.sealed_segments().len(), 1);
        assert_eq!(wal.stats().segments_reclaimed, 2);

        // The surviving log still replays, starting from a synthetic
        // watermark that re-establishes the cutoff.
        let (replayed, report) = scan_wal(&StdFs, &dir).unwrap();
        assert_eq!(report.segments, 1);
        assert!(matches!(replayed.first(), Some(StreamEvent::Watermark(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_close_depth_blocks_reclaim_until_quiescent() {
        let dir = temp_dir("depth");
        let mut wal = WalWriter::open(&dir, WalOptions::new(10)).unwrap();
        wal.append(&StreamEvent::Open {
            sequence: 1,
            symbol: "e".into(),
            at: 0,
        })
        .unwrap();
        wal.append(&StreamEvent::Watermark(10)).unwrap(); // sets the epoch base
        wal.append(&StreamEvent::Watermark(20)).unwrap(); // seals seg 1, open pending
        wal.append(&StreamEvent::Close {
            sequence: 1,
            symbol: "e".into(),
            at: 22,
        })
        .unwrap();
        wal.append(&StreamEvent::Watermark(30)).unwrap(); // seals seg 2, depth 0
        wal.flush().unwrap();
        assert_eq!(wal.sealed_segments().len(), 2);
        assert_eq!(wal.sealed_segments()[0].open_depth, 1);

        // Even with the cutoff far past segment 1, its dangling open pins it.
        assert_eq!(wal.reclaim(21).unwrap(), 0);
        // Once the whole quiescent prefix is evicted it all goes at once.
        assert_eq!(wal.reclaim(100).unwrap(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn always_policy_syncs_every_record() {
        let dir = temp_dir("always");
        let mut opts = WalOptions::new(100);
        opts.policy = FsyncPolicy::Always;
        let mut wal = WalWriter::open(&dir, opts).unwrap();
        wal.append(&interval(1, "a", 0, 5)).unwrap();
        wal.append(&interval(2, "b", 1, 6)).unwrap();
        assert_eq!(wal.stats().syncs, 2);
        assert_eq!(wal.stats().writes, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_failure_poisons_the_writer() {
        let dir = temp_dir("poison");
        let fs = FaultyFs::new(FaultPlan {
            fail_appends: true,
            ..FaultPlan::default()
        });
        let mut opts = WalOptions::new(100);
        opts.policy = FsyncPolicy::Always;
        opts.retry = RetryPolicy::none();
        let mut wal = WalWriter::open_with(fs, &dir, opts).unwrap();
        let err = wal.append(&interval(1, "a", 0, 5)).unwrap_err();
        assert!(err.context().contains("appending"), "{err}");
        // Poisoned: the next call fails fast with the sticky context.
        let err = wal.append(&interval(2, "b", 1, 6)).unwrap_err();
        assert!(err.context().contains("poisoned"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restart_appends_into_a_fresh_segment() {
        let dir = temp_dir("restart");
        let first = vec![interval(1, "a", 0, 5), StreamEvent::Watermark(6)];
        {
            let mut wal = WalWriter::open(&dir, WalOptions::new(100)).unwrap();
            for event in &first {
                wal.append(event).unwrap();
            }
            wal.flush().unwrap();
        }
        let mut wal = WalWriter::open(&dir, WalOptions::new(100)).unwrap();
        wal.append(&interval(2, "b", 7, 9)).unwrap();
        wal.flush().unwrap();
        let (replayed, report) = scan_wal(&StdFs, &dir).unwrap();
        assert_eq!(report.segments, 2);
        assert_eq!(replayed.len(), 3);
        assert_eq!(replayed[..2], first[..]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
