//! A lightweight cross-crate item model built on the lexer.
//!
//! The per-file rules in [`rules`](crate::rules) see one token stream at a
//! time; the semantic rules in [`semantic`](crate::semantic) need to know
//! *what calls what* across the whole workspace — a loop in
//! `tpminer::search` is only budget-safe because a function three call
//! edges away polls the meter. This module extracts just enough structure
//! to answer those questions, still zero-dependency and token-driven:
//!
//! - **Items**: `fn` definitions (with module path and surrounding `impl`
//!   type), `struct` fields, `enum` variants, `const`/`static` names, and
//!   `use` declarations resolved to leaf aliases.
//! - **Call edges**: every `name(…)` / `.name(…)` site inside a fn body,
//!   resolved *by name* to every workspace fn sharing that name. Name
//!   resolution without types over-approximates, which is the right
//!   direction for a linter: reachability queries may return "reaches"
//!   for a call that dynamically goes elsewhere, but they never miss a
//!   real edge.
//!
//! Test-gated items (`#[cfg(test)]`, `#[test]`) are indexed but marked,
//! so rules can skip them the same way the per-file tier does.

use crate::lexer::TokenKind;
use crate::source::FileContext;
use std::collections::HashMap;

/// Rust keywords that look like call sites when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "loop", "match", "return", "fn", "let", "in", "as", "move", "ref", "mut",
    "box", "do", "else", "impl", "trait", "struct", "enum", "union", "unsafe", "where", "use",
    "mod", "pub", "const", "static", "type", "dyn", "yield", "await",
];

/// One call site inside a fn body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Bare callee name (`submit`, not `worker.submit`).
    pub name: String,
    /// Whether the site is a method call (`.name(`) rather than a path
    /// or free-function call.
    pub method: bool,
    /// Whether the argument list is empty (`name()`), which is how the
    /// lock-discipline rule tells a thread `join()` / channel `recv()`
    /// from `Vec::join(sep)` / `Read::read(buf)`.
    pub empty_args: bool,
    /// 1-based source line of the callee token.
    pub line: usize,
}

/// One `fn` item.
#[derive(Debug)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Module-qualified name within its file, `impl` type included:
    /// `outer::inner::Type::method`.
    pub qual: String,
    /// Index of the owning file in [`Model::files`].
    pub file: usize,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Code-index range (into `FileContext::code`) of the body, braces
    /// included. Empty for bodiless trait-method signatures.
    pub body: (usize, usize),
    /// Whether the item sits inside a test region.
    pub test: bool,
    /// Call sites inside the body, in source order.
    pub calls: Vec<Call>,
}

/// One named struct field.
#[derive(Debug)]
pub struct FieldItem {
    pub name: String,
    pub line: usize,
    pub public: bool,
}

/// One `struct` item (unit and tuple structs carry no fields).
#[derive(Debug)]
pub struct StructItem {
    pub name: String,
    pub file: usize,
    pub line: usize,
    pub fields: Vec<FieldItem>,
}

/// One `enum` item with its variant names.
#[derive(Debug)]
pub struct EnumItem {
    pub name: String,
    pub file: usize,
    pub line: usize,
    pub variants: Vec<(String, usize)>,
}

/// One `const` or `static` item.
#[derive(Debug)]
pub struct ConstItem {
    pub name: String,
    pub file: usize,
    pub line: usize,
}

/// One leaf of a `use` tree: `use a::b::{c, d as e};` yields aliases
/// `c` (path `a::b::c`) and `e` (path `a::b::d`).
#[derive(Debug, PartialEq, Eq)]
pub struct UseItem {
    /// Name the import is visible as in this file.
    pub alias: String,
    /// Full `::`-separated path segments, alias excluded.
    pub path: Vec<String>,
    pub line: usize,
    /// Whether the use is re-exported (`pub use`).
    pub public: bool,
}

/// Everything the model extracted from one file.
#[derive(Debug, Default)]
pub struct FileModel {
    /// Workspace-relative path, mirrored from the [`FileContext`].
    pub path: String,
    pub fns: Vec<FnItem>,
    pub structs: Vec<StructItem>,
    pub enums: Vec<EnumItem>,
    pub consts: Vec<ConstItem>,
    pub uses: Vec<UseItem>,
}

/// The workspace-wide model: per-file items plus a name→fn index used for
/// call-edge resolution.
#[derive(Debug, Default)]
pub struct Model {
    pub files: Vec<FileModel>,
    /// Bare fn name → every `(file, fn)` defining it, workspace-wide.
    by_name: HashMap<String, Vec<(usize, usize)>>,
}

impl Model {
    /// Builds the model over every given file context. The `files` order
    /// defines the indices used throughout the model.
    pub fn build(ctxs: &[&FileContext]) -> Model {
        let mut model = Model::default();
        for (file_idx, ctx) in ctxs.iter().enumerate() {
            model.files.push(extract_file(ctx, file_idx));
        }
        for (fi, file) in model.files.iter().enumerate() {
            for (gi, f) in file.fns.iter().enumerate() {
                model
                    .by_name
                    .entry(f.name.clone())
                    .or_default()
                    .push((fi, gi));
            }
        }
        model
    }

    /// The model of the file at `path`, if it was indexed.
    pub fn file(&self, path: &str) -> Option<&FileModel> {
        self.files.iter().find(|f| f.path == path)
    }

    /// Every fn named `name`, across the workspace.
    pub fn fns_named(&self, name: &str) -> impl Iterator<Item = &FnItem> {
        self.by_name
            .get(name)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(|&(fi, gi)| &self.files[fi].fns[gi])
    }

    /// Whether any call in `seeds` transitively reaches a call whose name
    /// satisfies `target`, following workspace call edges by name.
    /// Over-approximate by construction (see the module docs).
    pub fn reaches(&self, seeds: &[String], target: impl Fn(&str) -> bool) -> bool {
        let mut seen: Vec<&str> = Vec::new();
        let mut queue: Vec<&str> = seeds.iter().map(String::as_str).collect();
        while let Some(name) = queue.pop() {
            if target(name) {
                return true;
            }
            if seen.contains(&name) {
                continue;
            }
            seen.push(name);
            for f in self.fns_named(name) {
                for call in &f.calls {
                    if !seen.contains(&call.name.as_str()) {
                        queue.push(&call.name);
                    }
                }
            }
        }
        false
    }

    /// Computes, by fixpoint over the call graph, the set of fn names
    /// whose callers may reach a call satisfying `direct` (e.g. "is a
    /// blocking primitive"). The predicate sees the defining file so
    /// callers can scope which modules' primitives count. Test-gated fns
    /// do not contribute direct hits (test helpers block freely) but do
    /// propagate.
    ///
    /// Because call edges are name-resolved, a name is only credited when
    /// **every** workspace definition of that name may reach a direct
    /// hit. The cheaper "any definition" rule melts down in practice: one
    /// `fn new` that spawns a worker thread would make every constructor
    /// call in the workspace "blocking", and the poison spreads through
    /// `len`/`iter`/`default` until the set contains essentially every
    /// fn. Unanimity keeps the answer meaningful for exactly the calls
    /// the lock rule cares about — helpers like `wait_idle` or
    /// `submit_refresh` with a single, genuinely blocking definition —
    /// at the cost of missing a blocking fn that shares its name with a
    /// non-blocking one (an accepted, documented under-approximation).
    pub fn may_reach_set(
        &self,
        direct: impl Fn(&FileModel, &Call) -> bool,
    ) -> std::collections::HashSet<String> {
        // Per-definition hotness, keyed in lockstep with self.files[..].fns.
        let mut def_hot: Vec<Vec<bool>> = self
            .files
            .iter()
            .map(|f| vec![false; f.fns.len()])
            .collect();
        // name -> its definition sites, for the unanimity check.
        let mut defs: std::collections::HashMap<&str, Vec<(usize, usize)>> =
            std::collections::HashMap::new();
        for (fi, file) in self.files.iter().enumerate() {
            for (i, f) in file.fns.iter().enumerate() {
                defs.entry(f.name.as_str()).or_default().push((fi, i));
            }
        }
        let mut hot_names: std::collections::HashSet<String> = std::collections::HashSet::new();
        loop {
            let mut changed = false;
            for (fi, file) in self.files.iter().enumerate() {
                for (i, f) in file.fns.iter().enumerate() {
                    if def_hot[fi][i] {
                        continue;
                    }
                    let hits = f
                        .calls
                        .iter()
                        .any(|c| (!f.test && direct(file, c)) || hot_names.contains(&c.name));
                    if hits {
                        def_hot[fi][i] = true;
                        changed = true;
                    }
                }
            }
            for (name, sites) in &defs {
                if !hot_names.contains(*name) && sites.iter().all(|&(fi, i)| def_hot[fi][i]) {
                    hot_names.insert((*name).to_string());
                    changed = true;
                }
            }
            if !changed {
                return hot_names;
            }
        }
    }
}

/// Token-walk extraction of one file's items.
fn extract_file(ctx: &FileContext, file_idx: usize) -> FileModel {
    let mut out = FileModel {
        path: ctx.path.clone(),
        ..FileModel::default()
    };
    // Scope stack: (brace depth at open, name contributed to the path).
    // `mod x {` and `impl Ty {` push; any other `{` pushes an anonymous
    // frame so depths stay matched.
    let mut scopes: Vec<(i32, Option<String>)> = Vec::new();
    let mut depth = 0i32;
    let code = &ctx.code;
    let mut pos = 0usize;
    while pos < code.len() {
        let ti = code[pos];
        let tok = &ctx.tokens[ti];
        let text = ctx.text(ti);
        match text {
            "{" => {
                depth += 1;
                scopes.push((depth, None));
                pos += 1;
            }
            "}" => {
                while scopes.last().is_some_and(|&(d, _)| d >= depth) {
                    scopes.pop();
                }
                depth -= 1;
                pos += 1;
            }
            "mod" if tok.kind == TokenKind::Ident => {
                // `mod name {` opens a named scope; `mod name;` does not.
                let name = code
                    .get(pos + 1)
                    .map(|&i| ctx.text(i).to_string())
                    .unwrap_or_default();
                if code.get(pos + 2).is_some_and(|&i| ctx.text(i) == "{") {
                    depth += 1;
                    scopes.push((depth, Some(name)));
                    pos += 3;
                } else {
                    pos += 1;
                }
            }
            "impl" if tok.kind == TokenKind::Ident => {
                // `impl<G> Trait for Type {` / `impl Type {`: the scope
                // name is the implemented type — the last path identifier
                // before the opening brace (after `for` when present).
                let mut scan = pos + 1;
                let mut ty: Option<String> = None;
                let mut angle = 0i32;
                while scan < code.len() {
                    let t = ctx.text(code[scan]);
                    match t {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        "{" if angle <= 0 => break,
                        ";" if angle <= 0 => break,
                        _ => {
                            if angle <= 0 && ctx.tokens[code[scan]].kind == TokenKind::Ident {
                                if t == "where" {
                                    // Bounds after `where` name types that
                                    // are not the impl target.
                                    break;
                                }
                                if t == "for" {
                                    ty = None; // the trait name was not the type
                                } else {
                                    ty = Some(t.to_string());
                                }
                            }
                        }
                    }
                    scan += 1;
                }
                // Advance to the `{` (or `;`) we stopped near.
                while scan < code.len()
                    && ctx.text(code[scan]) != "{"
                    && ctx.text(code[scan]) != ";"
                {
                    scan += 1;
                }
                if scan < code.len() && ctx.text(code[scan]) == "{" {
                    depth += 1;
                    scopes.push((depth, ty));
                    pos = scan + 1;
                } else {
                    pos = scan.max(pos + 1);
                }
            }
            "fn" if tok.kind == TokenKind::Ident => {
                let Some(&name_ti) = code.get(pos + 1) else {
                    break;
                };
                let name = ctx.text(name_ti).to_string();
                let line = ctx.tokens[name_ti].line;
                // Find the body `{` (or `;` for signatures), skipping the
                // parameter list, generics and return type.
                let mut scan = pos + 2;
                let mut paren = 0i32;
                let mut angle = 0i32;
                let mut body = (0usize, 0usize);
                while scan < code.len() {
                    let t = ctx.text(code[scan]);
                    match t {
                        "(" | "[" => paren += 1,
                        ")" | "]" => paren -= 1,
                        "<" if paren == 0 => angle += 1,
                        ">" if paren == 0 => angle = (angle - 1).max(0),
                        "{" if paren == 0 => {
                            let close = matching_brace(ctx, scan);
                            body = (scan, close + 1);
                            break;
                        }
                        ";" if paren == 0 && angle == 0 => break,
                        _ => {}
                    }
                    scan += 1;
                }
                let qual_prefix: Vec<&str> =
                    scopes.iter().filter_map(|(_, n)| n.as_deref()).collect();
                let qual = if qual_prefix.is_empty() {
                    name.clone()
                } else {
                    format!("{}::{}", qual_prefix.join("::"), name)
                };
                let calls = if body.0 < body.1 {
                    extract_calls(ctx, body)
                } else {
                    Vec::new()
                };
                out.fns.push(FnItem {
                    name,
                    qual,
                    file: file_idx,
                    line,
                    body,
                    test: ctx.is_test_line(line),
                    calls,
                });
                // Continue *inside* the body: nested fns and closures keep
                // getting indexed, and scope tracking stays consistent.
                pos = body.0.max(pos + 2).min(code.len());
                if body.0 >= body.1 {
                    pos = scan.min(code.len());
                }
            }
            "struct" if tok.kind == TokenKind::Ident => {
                if let Some(&name_ti) = code.get(pos + 1) {
                    let name = ctx.text(name_ti).to_string();
                    let line = ctx.tokens[name_ti].line;
                    // Only brace-bodied structs carry named fields; skip
                    // generics to find which delimiter follows.
                    let mut scan = pos + 2;
                    let mut angle = 0i32;
                    while scan < code.len() {
                        match ctx.text(code[scan]) {
                            "<" => angle += 1,
                            ">" => angle -= 1,
                            "{" if angle == 0 => break,
                            "(" | ";" if angle == 0 => {
                                scan = code.len();
                                break;
                            }
                            _ => {}
                        }
                        scan += 1;
                    }
                    let mut fields = Vec::new();
                    if scan < code.len() {
                        let close = matching_brace(ctx, scan);
                        fields = extract_fields(ctx, scan, close);
                        out.structs.push(StructItem {
                            name,
                            file: file_idx,
                            line,
                            fields,
                        });
                        pos = close + 1;
                        continue;
                    }
                    out.structs.push(StructItem {
                        name,
                        file: file_idx,
                        line,
                        fields,
                    });
                }
                pos += 1;
            }
            "enum" if tok.kind == TokenKind::Ident => {
                if let Some(&name_ti) = code.get(pos + 1) {
                    let name = ctx.text(name_ti).to_string();
                    let line = ctx.tokens[name_ti].line;
                    let mut scan = pos + 2;
                    let mut angle = 0i32;
                    while scan < code.len() {
                        match ctx.text(code[scan]) {
                            "<" => angle += 1,
                            ">" => angle -= 1,
                            "{" if angle == 0 => break,
                            ";" if angle == 0 => {
                                scan = code.len();
                                break;
                            }
                            _ => {}
                        }
                        scan += 1;
                    }
                    if scan < code.len() {
                        let close = matching_brace(ctx, scan);
                        let variants = extract_variants(ctx, scan, close);
                        out.enums.push(EnumItem {
                            name,
                            file: file_idx,
                            line,
                            variants,
                        });
                        pos = close + 1;
                        continue;
                    }
                }
                pos += 1;
            }
            "const" | "static" if tok.kind == TokenKind::Ident => {
                // `const NAME: …` (skip `const fn` and `const` in pointer
                // types, which are not followed by IDENT `:`).
                let named = code
                    .get(pos + 1)
                    .zip(code.get(pos + 2))
                    .is_some_and(|(&n, &c)| {
                        ctx.tokens[n].kind == TokenKind::Ident
                            && ctx.text(n) != "fn"
                            && ctx.text(c) == ":"
                    });
                if named {
                    let name_ti = code[pos + 1];
                    out.consts.push(ConstItem {
                        name: ctx.text(name_ti).to_string(),
                        file: file_idx,
                        line: ctx.tokens[name_ti].line,
                    });
                }
                pos += 1;
            }
            "use" if tok.kind == TokenKind::Ident => {
                let public = pos > 0 && ctx.text(code[pos - 1]) == "pub";
                let (items, next) = parse_use_tree(ctx, pos + 1, public);
                out.uses.extend(items);
                pos = next;
            }
            _ => pos += 1,
        }
    }
    out
}

/// Index (into `ctx.code`) of the `}` matching the `{` at code index
/// `open`. Falls back to the last token on unbalanced input.
fn matching_brace(ctx: &FileContext, open: usize) -> usize {
    let mut depth = 0i32;
    for pos in open..ctx.code.len() {
        match ctx.text(ctx.code[pos]) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return pos;
                }
            }
            _ => {}
        }
    }
    ctx.code.len().saturating_sub(1)
}

/// Call sites within a body code-range (braces included).
fn extract_calls(ctx: &FileContext, body: (usize, usize)) -> Vec<Call> {
    let mut calls = Vec::new();
    for pos in body.0..body.1 {
        let ti = ctx.code[pos];
        let tok = &ctx.tokens[ti];
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let text = ctx.text(ti);
        if NON_CALL_KEYWORDS.contains(&text) {
            continue;
        }
        // `name(` — but not `name!(` (macro) and not `fn name(` (nested
        // definition; those are indexed as their own items).
        let next_is_paren = pos + 1 < body.1 && ctx.text(ctx.code[pos + 1]) == "(";
        if !next_is_paren {
            continue;
        }
        if pos > 0 && ctx.text(ctx.code[pos - 1]) == "fn" {
            continue;
        }
        let method = pos > 0 && ctx.text(ctx.code[pos - 1]) == ".";
        let empty_args = pos + 2 < body.1 && ctx.text(ctx.code[pos + 2]) == ")";
        calls.push(Call {
            name: text.to_string(),
            method,
            empty_args,
            line: tok.line,
        });
    }
    calls
}

/// Named fields between a struct's braces: identifiers at nesting depth 1
/// directly followed by `:`.
fn extract_fields(ctx: &FileContext, open: usize, close: usize) -> Vec<FieldItem> {
    let mut fields = Vec::new();
    let mut depth = 0i32;
    let mut pos = open;
    while pos < close {
        let t = ctx.text(ctx.code[pos]);
        match t {
            "{" | "(" | "[" | "<" => depth += 1,
            "}" | ")" | "]" | ">" => depth -= 1,
            _ => {
                let tok = &ctx.tokens[ctx.code[pos]];
                if depth == 1
                    && tok.kind == TokenKind::Ident
                    && pos + 1 < close
                    && ctx.text(ctx.code[pos + 1]) == ":"
                    // Skip `pub(crate)` interior and attribute contents.
                    && t != "pub"
                    && t != "crate"
                {
                    // A field is either at statement start (previous token
                    // `{`, `,`, `]` from an attribute) or preceded by
                    // `pub`/`pub(…)`.
                    let prev = ctx.text(ctx.code[pos - 1]);
                    if matches!(prev, "{" | "," | "]" | ")" | "pub") {
                        let public = prev == "pub" || prev == ")";
                        fields.push(FieldItem {
                            name: t.to_string(),
                            line: tok.line,
                            public,
                        });
                    }
                }
            }
        }
        pos += 1;
    }
    fields
}

/// Variant names between an enum's braces: identifiers at depth 1 at
/// variant-start position.
fn extract_variants(ctx: &FileContext, open: usize, close: usize) -> Vec<(String, usize)> {
    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut pos = open;
    while pos < close {
        let t = ctx.text(ctx.code[pos]);
        match t {
            "{" | "(" | "[" | "<" => depth += 1,
            "}" | ")" | "]" | ">" => depth -= 1,
            _ => {
                let tok = &ctx.tokens[ctx.code[pos]];
                if depth == 1 && tok.kind == TokenKind::Ident {
                    let prev = ctx.text(ctx.code[pos - 1]);
                    if matches!(prev, "{" | "," | "]") {
                        variants.push((t.to_string(), tok.line));
                    }
                }
            }
        }
        pos += 1;
    }
    variants
}

/// Parses one `use` declaration starting at the code index after the
/// `use` keyword. Returns the leaf items and the code index after the
/// terminating `;`.
fn parse_use_tree(ctx: &FileContext, start: usize, public: bool) -> (Vec<UseItem>, usize) {
    let mut items = Vec::new();
    let mut pos = start;
    let mut prefix: Vec<Vec<String>> = vec![Vec::new()];
    let mut current: Vec<String> = Vec::new();
    let line = ctx
        .code
        .get(start)
        .map(|&i| ctx.tokens[i].line)
        .unwrap_or(0);

    fn flush(
        items: &mut Vec<UseItem>,
        prefix: &[Vec<String>],
        current: &mut Vec<String>,
        alias: Option<String>,
        line: usize,
        public: bool,
    ) {
        if current.is_empty() {
            return;
        }
        let mut path: Vec<String> = prefix.iter().flatten().cloned().collect();
        path.append(current);
        let last = path.last().cloned().unwrap_or_default();
        let alias = alias.unwrap_or(last);
        // `use x::*;` globs carry no single alias; record them with the
        // `*` alias so callers can still see the glob.
        items.push(UseItem {
            alias,
            path,
            line,
            public,
        });
    }

    while pos < ctx.code.len() {
        let t = ctx.text(ctx.code[pos]).to_string();
        match t.as_str() {
            ";" => {
                flush(&mut items, &prefix, &mut current, None, line, public);
                return (items, pos + 1);
            }
            "{" => {
                prefix.push(std::mem::take(&mut current));
                pos += 1;
            }
            "}" => {
                flush(&mut items, &prefix, &mut current, None, line, public);
                prefix.pop();
                pos += 1;
            }
            "," => {
                flush(&mut items, &prefix, &mut current, None, line, public);
                pos += 1;
            }
            "as" => {
                let alias = ctx.code.get(pos + 1).map(|&i| ctx.text(i).to_string());
                flush(&mut items, &prefix, &mut current, alias, line, public);
                // Skip the alias token; the following `,`/`}`/`;` is
                // handled normally (current is already empty).
                pos += 2;
            }
            ":" => pos += 1,
            _ => {
                if ctx.tokens[ctx.code[pos]].kind == TokenKind::Ident || t == "*" {
                    current.push(t);
                }
                pos += 1;
            }
        }
    }
    flush(&mut items, &prefix, &mut current, None, line, public);
    (items, pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::CrateKind;

    fn ctx(path: &str, src: &str) -> FileContext {
        FileContext::new(path.into(), "demo".into(), CrateKind::Lib, src.into())
    }

    fn model(src: &str) -> Model {
        let c = ctx("crates/demo/src/lib.rs", src);
        Model::build(&[&c])
    }

    #[test]
    fn fns_in_nested_modules_get_qualified_names() {
        let m = model(
            "mod outer {\n    pub mod inner {\n        pub fn leaf() {}\n    }\n    fn mid() {}\n}\nfn top() {}\n",
        );
        let quals: Vec<&str> = m.files[0].fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, ["outer::inner::leaf", "outer::mid", "top"]);
    }

    #[test]
    fn impl_methods_carry_the_type_name() {
        let m = model(
            "struct Engine { x: u32 }\nimpl Engine {\n    fn run(&self) { self.step(); }\n}\nimpl Iterator for Engine {\n    type Item = u32;\n    fn next(&mut self) -> Option<u32> { None }\n}\n",
        );
        let quals: Vec<&str> = m.files[0].fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, ["Engine::run", "Engine::next"]);
    }

    #[test]
    fn call_edges_distinguish_methods_and_skip_macros() {
        let m = model(
            "fn f() {\n    helper();\n    self.method(1);\n    println!(\"not a call\");\n    let v = Vec::new();\n}\nfn helper() {}\n",
        );
        let f = &m.files[0].fns[0];
        let names: Vec<(&str, bool)> = f
            .calls
            .iter()
            .map(|c| (c.name.as_str(), c.method))
            .collect();
        assert_eq!(names, [("helper", false), ("method", true), ("new", false)]);
    }

    #[test]
    fn reaches_follows_transitive_call_edges() {
        let m =
            model("fn a() { b(); }\nfn b() { c(); }\nfn c() { poll_budget(); }\nfn lonely() {}\n");
        assert!(m.reaches(&["a".into()], |n| n == "poll_budget"));
        assert!(!m.reaches(&["lonely".into()], |n| n == "poll_budget"));
    }

    #[test]
    fn reaches_handles_recursion_without_looping() {
        let m = model("fn a() { a(); b(); }\nfn b() { a(); }\n");
        assert!(!m.reaches(&["a".into()], |n| n == "absent"));
        assert!(m.reaches(&["b".into()], |n| n == "a"));
    }

    #[test]
    fn may_reach_set_requires_every_definition_of_a_name_to_block() {
        // `spawn_worker` blocks (send), and `new` has two definitions: one
        // calls spawn_worker, one is a pure constructor. Unanimity means
        // `new` stays cold — otherwise every constructor call in the
        // workspace would be poisoned through the shared name.
        let a = ctx(
            "crates/a/src/lib.rs",
            "fn spawn_worker(tx: &T) { tx.send(1); }\n\
             impl Worker { fn new(tx: &T) -> Self { spawn_worker(tx); Self }\n}\n",
        );
        let b = ctx(
            "crates/b/src/lib.rs",
            "impl Plain { fn new() -> Self { Self }\n}\n\
             fn build() { let p = Plain::new(); }\n",
        );
        let m = Model::build(&[&a, &b]);
        let hot = m.may_reach_set(|_, c| c.name == "send");
        assert!(hot.contains("spawn_worker"), "direct hit propagates");
        assert!(
            !hot.contains("new"),
            "split-definition names stay cold: {hot:?}"
        );
        assert!(!hot.contains("build"), "callers of cold names stay cold");
    }

    #[test]
    fn may_reach_set_credits_unanimous_names_transitively() {
        let a = ctx(
            "crates/a/src/lib.rs",
            "fn wait_idle(&self) { self.cv.wait(); }\n\
             fn sync(&self) { self.wait_idle(); }\n",
        );
        let m = Model::build(&[&a]);
        let hot = m.may_reach_set(|_, c| c.name == "wait");
        assert!(hot.contains("wait_idle"));
        assert!(
            hot.contains("sync"),
            "single-definition chains still propagate"
        );
    }

    #[test]
    fn struct_fields_and_enum_variants_are_extracted() {
        let m = model(
            "pub struct Stats {\n    pub done: u64,\n    started: u64,\n    pub lag: Option<u64>,\n}\npub enum Verb {\n    Create { name: String },\n    Ping,\n    Query(u32),\n}\nstruct Unit;\nstruct Pair(u32, u32);\n",
        );
        let s = &m.files[0].structs[0];
        let fields: Vec<(&str, bool)> = s
            .fields
            .iter()
            .map(|f| (f.name.as_str(), f.public))
            .collect();
        assert_eq!(fields, [("done", true), ("started", false), ("lag", true)]);
        let e = &m.files[0].enums[0];
        let variants: Vec<&str> = e.variants.iter().map(|(v, _)| v.as_str()).collect();
        assert_eq!(variants, ["Create", "Ping", "Query"]);
        // Unit/tuple structs are indexed without phantom fields.
        assert_eq!(m.files[0].structs.len(), 3);
        assert!(m.files[0].structs[1].fields.is_empty());
        assert!(m.files[0].structs[2].fields.is_empty());
    }

    #[test]
    fn use_trees_resolve_nested_groups_and_renames() {
        let m = model(
            "use std::sync::{Arc, mpsc::{self, Sender as Tx}};\npub use crate::inner::Thing;\nuse std::collections::*;\n",
        );
        let uses = &m.files[0].uses;
        let find = |alias: &str| uses.iter().find(|u| u.alias == alias).unwrap();
        assert_eq!(find("Arc").path, ["std", "sync", "Arc"]);
        assert_eq!(find("Tx").path, ["std", "sync", "mpsc", "Sender"]);
        assert_eq!(find("self").path, ["std", "sync", "mpsc", "self"]);
        let thing = find("Thing");
        assert!(thing.public, "pub use is a re-export");
        assert_eq!(thing.path, ["crate", "inner", "Thing"]);
        assert!(uses.iter().any(|u| u.alias == "*"));
    }

    #[test]
    fn re_exported_fn_is_reachable_under_its_own_name() {
        // A re-export does not rename the fn: call edges resolve by bare
        // name, so `pub use` corner cases must not hide definitions.
        let src_a = ctx(
            "crates/a/src/lib.rs",
            "pub mod deep { pub fn poll() {} }\npub use deep::poll;\n",
        );
        let src_b = ctx("crates/b/src/lib.rs", "fn go() { poll(); }\n");
        let m = Model::build(&[&src_a, &src_b]);
        assert!(m.reaches(&["go".into()], |n| n == "poll"));
        // And the re-export itself is visible to use-resolution queries.
        let reexport = m.files[0]
            .uses
            .iter()
            .find(|u| u.alias == "poll")
            .expect("re-export indexed");
        assert!(reexport.public);
        assert_eq!(reexport.path, ["deep", "poll"]);
    }

    #[test]
    fn consts_and_bodiless_fns_are_indexed() {
        let m = model(
            "pub const LIMIT: usize = 4;\nstatic NAME: &str = \"x\";\ntrait T {\n    fn sig(&self) -> u32;\n    fn with_body(&self) -> u32 { self.sig() }\n}\n",
        );
        let consts: Vec<&str> = m.files[0].consts.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(consts, ["LIMIT", "NAME"]);
        let sig = m.files[0].fns.iter().find(|f| f.name == "sig").unwrap();
        assert!(sig.calls.is_empty(), "no body, no calls");
        let with_body = m.files[0]
            .fns
            .iter()
            .find(|f| f.name == "with_body")
            .unwrap();
        assert_eq!(with_body.calls.len(), 1);
    }

    #[test]
    fn test_gated_fns_are_marked() {
        let m = model(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { live(); }\n}\n",
        );
        assert!(!m.files[0].fns[0].test);
        let t = m.files[0].fns.iter().find(|f| f.name == "t").unwrap();
        assert!(t.test);
    }
}
