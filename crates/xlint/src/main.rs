//! CLI entry point: `cargo run -p xlint [-- --json] [--root DIR] [FILES…]`.
//!
//! With no file arguments the whole workspace is linted. Exit codes:
//! `0` clean, `1` unsuppressed violations, `2` usage or I/O error.

// This is the lint tool's own terminal output, not library code.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut files: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("xlint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: xlint [--json] [--root DIR] [FILES…]\n\n\
                     Lints the workspace (or just FILES) against the rule \
                     catalogue in CONTRIBUTING.md.\n\
                     Exit codes: 0 clean, 1 violations, 2 usage/IO error."
                );
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("xlint: unknown flag `{arg}` (try --help)");
                return ExitCode::from(2);
            }
            _ => files.push(PathBuf::from(arg)),
        }
    }

    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "xlint: {} does not look like a workspace root (no Cargo.toml); \
             run from the repo root or pass --root",
            root.display()
        );
        return ExitCode::from(2);
    }

    let result = if files.is_empty() {
        xlint::run_workspace(&root)
    } else {
        xlint::run_paths(&root, &files)
    };
    let report = match result {
        Ok(report) => report,
        Err(err) => {
            eprintln!("xlint: {err}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
