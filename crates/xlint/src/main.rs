//! CLI entry point:
//! `cargo run -p xlint [-- --json|--sarif] [--changed[=BASE]] [--root DIR] [FILES…]`.
//!
//! With no file arguments the whole workspace is linted (both the
//! per-file and semantic tiers). `--changed` analyzes the workspace but
//! reports only violations in files differing from BASE (default HEAD).
//! Explicit FILES run the per-file tier only — semantic rules need every
//! call edge. Exit codes: `0` clean, `1` unsuppressed violations, `2`
//! usage or I/O error.

// This is the lint tool's own terminal output, not library code.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::path::PathBuf;
use std::process::ExitCode;

/// Exit codes, mirroring the `cli/src/exit.rs` registry (xlint cannot
/// depend on the CLI crate; `exit-code-registry` bans re-deriving these
/// as bare numerals anywhere else).
const EXIT_VIOLATIONS: u8 = 1;
const EXIT_USAGE: u8 = 2;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut format = Format::Human;
    let mut root = PathBuf::from(".");
    let mut changed: Option<String> = None;
    let mut files: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--sarif" => format = Format::Sarif,
            "--changed" => changed = Some("HEAD".to_string()),
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("xlint: --root requires a directory argument");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: xlint [--json|--sarif] [--changed[=BASE]] [--root DIR] [FILES…]\n\n\
                     Lints the workspace against the rule catalogue in CONTRIBUTING.md.\n\
                     Modes:\n\
                     \x20 (default)        whole workspace, per-file + semantic rules\n\
                     \x20 --changed[=BASE] analyze everything, report only files in\n\
                     \x20                  `git diff --name-only BASE` (default HEAD)\n\
                     \x20 FILES…           just those files, per-file rules only\n\
                     Output: --json (stable schema) or --sarif (GitHub code scanning).\n\
                     Exit codes: 0 clean, 1 violations, 2 usage/IO error."
                );
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with("--changed=") => {
                changed = Some(arg["--changed=".len()..].to_string());
            }
            _ if arg.starts_with('-') => {
                eprintln!("xlint: unknown flag `{arg}` (try --help)");
                return ExitCode::from(EXIT_USAGE);
            }
            _ => files.push(PathBuf::from(arg)),
        }
    }

    if changed.is_some() && !files.is_empty() {
        eprintln!("xlint: --changed and explicit FILES are mutually exclusive");
        return ExitCode::from(EXIT_USAGE);
    }
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "xlint: {} does not look like a workspace root (no Cargo.toml); \
             run from the repo root or pass --root",
            root.display()
        );
        return ExitCode::from(EXIT_USAGE);
    }

    let result = if let Some(base) = changed {
        xlint::run_changed(&root, &base)
    } else if files.is_empty() {
        xlint::run_workspace(&root)
    } else {
        xlint::run_paths(&root, &files)
    };
    let report = match result {
        Ok(report) => report,
        Err(err) => {
            eprintln!("xlint: {err}");
            return ExitCode::from(EXIT_USAGE);
        }
    };

    match format {
        Format::Human => print!("{}", report.render_human()),
        Format::Json => print!("{}", report.render_json()),
        Format::Sarif => print!("{}", report.render_sarif()),
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_VIOLATIONS)
    }
}
