//! `xlint` — first-party static analysis for this workspace.
//!
//! The engine's two hardest-won properties are invisible to the type
//! system: the hot path is hash-free (PR 3's ~3.6x) and the library
//! crates are panic-free by contract (PR 1's budgets and worker
//! isolation). `xlint` pins those invariants — plus unsafe hygiene,
//! thread-spawn discipline and clock confinement — as lint rules that run
//! on every commit, with per-line `// xlint::allow(<rule>): <reason>`
//! escape hatches that force every exception to carry a justification.
//!
//! The crate is pure `std` (zero dependencies), so it builds and behaves
//! identically under the offline dev-stub environment and in networked
//! CI. See `CONTRIBUTING.md` ("Lint policy") for the rule catalogue and
//! `DESIGN.md` for why each invariant exists.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod model;
pub mod report;
pub mod rules;
pub mod semantic;
pub mod source;

use model::Model;
use report::Report;
use rules::{apply_allows, check_file, Violation};
use source::{CrateKind, FileContext};
use std::collections::HashSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose binaries legitimately print, exit, read clocks and unwrap
/// at the top level: the CLI, the bench harness, and xlint itself.
/// Everything else under `crates/` is held to the library contract.
pub const TOOL_CRATES: &[&str] = &["cli", "bench", "xlint"];

/// Lints every workspace source file under `root` and returns the report.
///
/// Coverage is the `src/` tree of each member crate plus the umbrella
/// crate's `src/`. Integration tests, benches, examples and fixtures are
/// deliberately out of scope: the rules police production code, and test
/// code is exempt from them anyway.
///
/// A workspace run is the only mode that activates the semantic tier
/// (`budget-poll`, `lock-discipline`, `wire-drift`,
/// `exit-code-registry`): those rules resolve call edges across crates,
/// so a partial file set would make them guess. Explicit-file mode
/// ([`run_paths`]) stays per-file.
pub fn run_workspace(root: &Path) -> io::Result<Report> {
    let mut files: Vec<(String, String, CrateKind, PathBuf)> = Vec::new();

    // Umbrella crate.
    collect_rs(&root.join("src"), &mut |p| {
        files.push(("ptpminer".into(), CrateKind::Lib, p).into_named(root));
    })?;

    // Member crates.
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.join("Cargo.toml").is_file())
        .collect();
    members.sort();
    for member in members {
        let name = member
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let kind = if TOOL_CRATES.contains(&name.as_str()) {
            CrateKind::Tool
        } else {
            CrateKind::Lib
        };
        collect_rs(&member.join("src"), &mut |p| {
            files.push((name.clone(), kind, p).into_named(root));
        })?;
    }

    let docs = fs::read_to_string(root.join("docs").join("SERVER.md")).ok();
    run_files(files, docs, true)
}

/// Lints only the files that differ from `base` (`git diff --name-only
/// <base>`), for fast pre-commit runs. The whole workspace is still
/// *analyzed* — the semantic tier needs every call edge — but only
/// violations (including unused-allow reports) in changed files are
/// kept, so `checked_files`/`suppressed` describe the full analysis
/// while the violation list is scoped to the diff.
pub fn run_changed(root: &Path, base: &str) -> io::Result<Report> {
    let output = std::process::Command::new("git")
        .args(["diff", "--name-only", base])
        .current_dir(root)
        .output()?;
    if !output.status.success() {
        return Err(io::Error::other(format!(
            "git diff --name-only {base} failed: {}",
            String::from_utf8_lossy(&output.stderr).trim()
        )));
    }
    let changed: HashSet<String> = String::from_utf8_lossy(&output.stdout)
        .lines()
        .map(|l| l.trim().replace('\\', "/"))
        .filter(|l| !l.is_empty())
        .collect();
    let mut report = run_workspace(root)?;
    report.violations.retain(|v| changed.contains(&v.file));
    Ok(report)
}

/// Lints an explicit file list (used by the fixture tests and the CLI's
/// positional-arguments mode). Crate name and kind are derived from the
/// path the same way the workspace walk does. Only the per-file tier
/// runs: semantic rules need whole-workspace call edges (see
/// [`run_workspace`]).
pub fn run_paths(root: &Path, paths: &[PathBuf]) -> io::Result<Report> {
    let files = paths
        .iter()
        .map(|p| {
            let (name, kind) = classify(root, p);
            (name, kind, p.clone()).into_named(root)
        })
        .collect();
    run_files(files, None, false)
}

fn run_files(
    mut files: Vec<(String, String, CrateKind, PathBuf)>,
    docs: Option<String>,
    semantic_tier: bool,
) -> io::Result<Report> {
    files.sort_by(|a, b| a.0.cmp(&b.0));
    let checked_files = files.len();
    let mut ctxs: Vec<FileContext> = Vec::with_capacity(files.len());
    for (rel, crate_name, kind, abs) in files {
        let src = fs::read_to_string(&abs)?;
        ctxs.push(FileContext::new(rel, crate_name, kind, src));
    }

    // Per-file tier, then the semantic tier routed back to the owning
    // file so one apply_allows pass per file sees the combined set (this
    // is what keeps unused-allow reporting exact for semantic allows).
    let mut raw: Vec<Vec<Violation>> = ctxs.iter().map(check_file).collect();
    if semantic_tier {
        let refs: Vec<&FileContext> = ctxs.iter().collect();
        let model = Model::build(&refs);
        for v in semantic::check_workspace(&refs, &model, docs.as_deref()) {
            if let Some(i) = ctxs.iter().position(|c| c.path == v.file) {
                raw[i].push(v);
            }
        }
    }

    let mut violations = Vec::new();
    let mut suppressed = 0usize;
    for (ctx, raw) in ctxs.iter().zip(raw) {
        let (mut v, s) = apply_allows(ctx, raw);
        violations.append(&mut v);
        suppressed += s;
    }
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(Report {
        checked_files,
        suppressed,
        violations,
    })
}

/// Derives (crate name, kind) from a path, for explicit-file mode.
fn classify(root: &Path, path: &Path) -> (String, CrateKind) {
    let rel = rel_path(root, path);
    let name = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("ptpminer")
        .to_string();
    let kind = if TOOL_CRATES.contains(&name.as_str()) {
        CrateKind::Tool
    } else {
        CrateKind::Lib
    };
    (name, kind)
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    // Normalize separators so rule file lists match on every host.
    rel.to_string_lossy().replace('\\', "/")
}

/// Recursively collects `.rs` files under `dir` (no-op if it is absent),
/// in sorted order for deterministic reports.
fn collect_rs(dir: &Path, push: &mut impl FnMut(PathBuf)) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect_rs(&entry, push)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            push(entry);
        }
    }
    Ok(())
}

/// Small helper to carry (crate, kind, abs path) into (rel, crate, kind,
/// abs) tuples without repeating the relative-path derivation.
trait IntoNamed {
    fn into_named(self, root: &Path) -> (String, String, CrateKind, PathBuf);
}

impl IntoNamed for (String, CrateKind, PathBuf) {
    fn into_named(self, root: &Path) -> (String, String, CrateKind, PathBuf) {
        let (name, kind, path) = self;
        (rel_path(root, &path), name, kind, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_derives_crate_and_kind_from_path() {
        let root = Path::new("/ws");
        let (name, kind) = classify(root, Path::new("/ws/crates/tpminer/src/search.rs"));
        assert_eq!(name, "tpminer");
        assert_eq!(kind, CrateKind::Lib);
        let (name, kind) = classify(root, Path::new("/ws/crates/cli/src/main.rs"));
        assert_eq!(name, "cli");
        assert_eq!(kind, CrateKind::Tool);
        let (name, kind) = classify(root, Path::new("/ws/src/lib.rs"));
        assert_eq!(name, "ptpminer");
        assert_eq!(kind, CrateKind::Lib);
    }
}
