//! A small Rust lexer, just deep enough for lint rules.
//!
//! The lexer's job is to let rules reason about *code* without being
//! fooled by comments, strings, or lifetimes:
//!
//! - line comments (`//`, `///`, `//!`) and block comments (`/* */`,
//!   nested to arbitrary depth) become [`TokenKind::LineComment`] /
//!   [`TokenKind::BlockComment`] tokens — kept, because the rule engine
//!   reads `// SAFETY:` and `// xlint::allow(...)` directives out of them;
//! - string literals (`"…"` with escapes, raw strings `r"…"` /
//!   `r#"…"#` with any number of hashes, byte and raw-byte variants) and
//!   char literals (`'a'`, `'\n'`, `b'x'`) are single opaque tokens, so a
//!   `"panic!"` inside a string never matches a rule;
//! - lifetimes (`'a`, `'static`) are distinguished from char literals by
//!   lookahead: `'` followed by identifier characters with no closing `'`
//!   is a lifetime.
//!
//! It is *not* a full Rust lexer: numeric literals are tokenized loosely
//! (enough to not split identifiers), and macro bodies are lexed like
//! ordinary code, which is exactly what the rules want.

/// Classification of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers `r#ident`).
    Ident,
    /// A lifetime such as `'a` or `'static` (label uses lex the same way).
    Lifetime,
    /// Char or byte-char literal, e.g. `'x'`, `'\u{1F600}'`, `b'\n'`.
    CharLit,
    /// Any string literal: plain, raw, byte, or raw-byte.
    StrLit,
    /// Numeric literal (loosely tokenized).
    Num,
    /// A single punctuation character (`.`, `:`, `!`, `{`, …).
    Punct,
    /// `// …` to end of line, including doc comments.
    LineComment,
    /// `/* … */`, nested blocks included, possibly spanning lines.
    BlockComment,
}

/// One lexed token: its kind, byte range in the source, and the 1-based
/// line its first byte sits on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
    pub line: usize,
}

impl Token {
    /// The token's text within `src` (the same source it was lexed from).
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }

    /// The 1-based line of the token's last byte (equals `line` unless the
    /// token spans lines, as block comments and raw strings can).
    pub fn end_line(&self, src: &str) -> usize {
        self.line + src[self.start..self.end].matches('\n').count()
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: usize,
}

impl<'s> Cursor<'s> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.bytes.get(self.pos + offset).copied()
    }

    fn peek_char(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    /// Advances one byte, maintaining the line counter.
    fn bump(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    /// Advances one full char.
    fn bump_char(&mut self) {
        if let Some(c) = self.peek_char() {
            for _ in 0..c.len_utf8() {
                self.bump();
            }
        }
    }
}

/// Lexes `src` into a token stream. Never fails: unterminated constructs
/// consume to end of input, and bytes that fit nothing become `Punct`.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut tokens = Vec::new();

    while let Some(b) = cur.peek() {
        let start = cur.pos;
        let line = cur.line;
        let kind = match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
                continue;
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                while cur.peek().is_some_and(|c| c != b'\n') {
                    cur.bump();
                }
                TokenKind::LineComment
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => cur.bump(),
                        (None, _) => break,
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => {
                eat_string(&mut cur);
                TokenKind::StrLit
            }
            b'\'' => lex_quote(&mut cur),
            b'r' | b'b' if starts_prefixed_literal(&cur) => eat_prefixed_literal(&mut cur),
            _ if is_ident_start(cur.peek_char().unwrap_or('\0')) => {
                while cur.peek_char().is_some_and(is_ident_continue) {
                    cur.bump_char();
                }
                TokenKind::Ident
            }
            b'0'..=b'9' => {
                while cur.peek_char().is_some_and(is_ident_continue) {
                    cur.bump_char();
                }
                TokenKind::Num
            }
            _ => {
                cur.bump_char();
                TokenKind::Punct
            }
        };
        tokens.push(Token {
            kind,
            start,
            end: cur.pos,
            line,
        });
    }
    tokens
}

/// Whether the cursor sits on `r"`, `r#"`, `r#ident`, `b"`, `b'`, `br"`,
/// `rb…` — anything where the leading `r`/`b` belongs to a literal prefix
/// rather than a plain identifier.
fn starts_prefixed_literal(cur: &Cursor<'_>) -> bool {
    let rest = &cur.bytes[cur.pos..];
    matches!(
        rest,
        [b'r', b'"', ..]
            | [b'r', b'#', ..]
            | [b'b', b'"', ..]
            | [b'b', b'\'', ..]
            | [b'b', b'r', b'"', ..]
            | [b'b', b'r', b'#', ..]
    )
}

/// Lexes a literal beginning with an `r`/`b`/`br` prefix. Raw identifiers
/// (`r#match`) come through here too because they share the `r#` prefix.
fn eat_prefixed_literal(cur: &mut Cursor<'_>) -> TokenKind {
    // Consume the prefix letters.
    while cur.peek().is_some_and(|c| c == b'r' || c == b'b') {
        // `b` / `r` / `br`: stop once the next byte opens the literal.
        if matches!(cur.peek(), Some(b'r')) && matches!(cur.peek_at(1), Some(b'"') | Some(b'#')) {
            cur.bump(); // the `r` of a raw string
            break;
        }
        if matches!(cur.peek(), Some(b'b'))
            && matches!(cur.peek_at(1), Some(b'"') | Some(b'\'') | Some(b'r'))
        {
            cur.bump();
            continue;
        }
        break;
    }
    match cur.peek() {
        Some(b'"') => {
            eat_string(cur);
            TokenKind::StrLit
        }
        Some(b'\'') => {
            cur.bump();
            eat_char_body(cur);
            TokenKind::CharLit
        }
        Some(b'#') => {
            // Count hashes: `r##"…"##` raw string vs `r#ident` raw identifier.
            let mut hashes = 0usize;
            while cur.peek_at(hashes) == Some(b'#') {
                hashes += 1;
            }
            if cur.peek_at(hashes) == Some(b'"') {
                for _ in 0..=hashes {
                    cur.bump();
                }
                // Scan for `"` followed by `hashes` hashes.
                'scan: while let Some(c) = cur.peek() {
                    cur.bump();
                    if c == b'"' {
                        for h in 0..hashes {
                            if cur.peek_at(h) != Some(b'#') {
                                continue 'scan;
                            }
                        }
                        for _ in 0..hashes {
                            cur.bump();
                        }
                        break;
                    }
                }
                TokenKind::StrLit
            } else {
                // Raw identifier: consume `#` then the identifier.
                cur.bump();
                while cur.peek_char().is_some_and(is_ident_continue) {
                    cur.bump_char();
                }
                TokenKind::Ident
            }
        }
        _ => {
            // Plain identifier that merely started with r/b.
            while cur.peek_char().is_some_and(is_ident_continue) {
                cur.bump_char();
            }
            TokenKind::Ident
        }
    }
}

/// Consumes a `"…"` string with escape handling; cursor starts on the `"`.
fn eat_string(cur: &mut Cursor<'_>) {
    cur.bump();
    while let Some(c) = cur.peek() {
        match c {
            b'\\' => {
                cur.bump();
                if cur.peek().is_some() {
                    cur.bump_char();
                }
            }
            b'"' => {
                cur.bump();
                return;
            }
            _ => cur.bump_char(),
        }
    }
}

/// After an opening `'` has been consumed, eats the char body and the
/// closing `'`.
fn eat_char_body(cur: &mut Cursor<'_>) {
    match cur.peek() {
        Some(b'\\') => {
            cur.bump();
            if cur.peek().is_some() {
                cur.bump_char();
            }
        }
        Some(_) => cur.bump_char(),
        None => return,
    }
    // `'\u{…}'` leaves the brace body pending; consume to the quote.
    while cur.peek().is_some_and(|c| c != b'\'') && cur.peek() != Some(b'\n') {
        cur.bump_char();
    }
    if cur.peek() == Some(b'\'') {
        cur.bump();
    }
}

/// Disambiguates `'a'` (char literal) from `'a` (lifetime); cursor starts
/// on the `'`.
fn lex_quote(cur: &mut Cursor<'_>) -> TokenKind {
    // An escape is always a char literal: `'\n'`.
    if cur.peek_at(1) == Some(b'\\') {
        cur.bump();
        eat_char_body(cur);
        return TokenKind::CharLit;
    }
    // `'c'` with any single char `c` (multi-byte included) is a char literal.
    let after = cur.src[cur.pos + 1..].chars().next();
    if let Some(c) = after {
        let close_at = cur.pos + 1 + c.len_utf8();
        if cur.bytes.get(close_at) == Some(&b'\'') {
            cur.bump(); // '
            cur.bump_char(); // c
            cur.bump(); // '
            return TokenKind::CharLit;
        }
        if is_ident_start(c) {
            // Lifetime: consume the quote and the identifier.
            cur.bump();
            while cur.peek_char().is_some_and(is_ident_continue) {
                cur.bump_char();
            }
            return TokenKind::Lifetime;
        }
    }
    // Lone or malformed quote: punt as punctuation.
    cur.bump();
    TokenKind::Punct
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, &src[t.start..t.end]))
            .collect()
    }

    #[test]
    fn line_and_doc_comments_are_single_tokens() {
        let toks = kinds("let x = 1; // trailing unwrap() mention\n/// doc panic!\ncode");
        assert!(toks
            .iter()
            .any(|(k, s)| *k == TokenKind::LineComment && s.contains("unwrap()")));
        assert!(toks
            .iter()
            .any(|(k, s)| *k == TokenKind::LineComment && s.contains("panic!")));
        assert_eq!(toks.last().unwrap(), &(TokenKind::Ident, "code"));
    }

    #[test]
    fn nested_block_comments_terminate_at_matching_depth() {
        let src = "before /* outer /* inner */ still outer */ after";
        let toks = kinds(src);
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "before"),
                (
                    TokenKind::BlockComment,
                    "/* outer /* inner */ still outer */"
                ),
                (TokenKind::Ident, "after"),
            ]
        );
    }

    #[test]
    fn block_comments_track_lines() {
        let src = "/* a\nb\nc */ x";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[0].end_line(src), 3);
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "contains unwrap() and // no comment";"#);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::StrLit).count(),
            1
        );
        assert!(!toks
            .iter()
            .any(|(k, s)| *k == TokenKind::Ident && s.contains("unwrap")));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let toks = kinds(r#""a \" b" tail"#);
        assert_eq!(toks[0].0, TokenKind::StrLit);
        assert_eq!(toks[1], (TokenKind::Ident, "tail"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r##"let s = r#"inner "quoted" panic!"# ; done"##;
        let toks = kinds(src);
        let raw = toks.iter().find(|(k, _)| *k == TokenKind::StrLit).unwrap();
        assert!(raw.1.starts_with("r#\""));
        assert!(raw.1.ends_with("\"#"));
        assert_eq!(toks.last().unwrap(), &(TokenKind::Ident, "done"));
    }

    #[test]
    fn raw_string_two_hashes_ignores_single_hash_close() {
        let src = r###"r##"has "# inside"## end"###;
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::StrLit);
        assert!(toks[0].1.ends_with("\"##"));
        assert_eq!(toks[1], (TokenKind::Ident, "end"));
    }

    #[test]
    fn byte_strings_and_raw_byte_strings() {
        let toks = kinds(r##"b"bytes" br#"raw bytes"# b'x'"##);
        assert_eq!(toks[0].0, TokenKind::StrLit);
        assert_eq!(toks[1].0, TokenKind::StrLit);
        assert_eq!(toks[2].0, TokenKind::CharLit);
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let toks = kinds("let c: char = 'a'; fn f<'a>(x: &'a str) {} 'x' '\\n' 'static_lt");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::CharLit)
            .collect();
        assert_eq!(
            lifetimes.iter().map(|(_, s)| *s).collect::<Vec<_>>(),
            vec!["'a", "'a", "'static_lt"]
        );
        assert_eq!(
            chars.iter().map(|(_, s)| *s).collect::<Vec<_>>(),
            vec!["'a'", "'x'", "'\\n'"]
        );
    }

    #[test]
    fn unicode_char_literals() {
        let toks = kinds("'é' '\\u{1F600}' 'b");
        assert_eq!(toks[0].0, TokenKind::CharLit);
        assert_eq!(toks[1].0, TokenKind::CharLit);
        assert_eq!(toks[2].0, TokenKind::Lifetime);
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = kinds("r#match r#unwrap normal");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "r#match"),
                (TokenKind::Ident, "r#unwrap"),
                (TokenKind::Ident, "normal"),
            ]
        );
    }

    #[test]
    fn unwrap_or_is_not_split() {
        let toks = kinds("x.unwrap_or(0).unwrap()");
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, s)| *s)
            .collect();
        assert_eq!(idents, vec!["x", "unwrap_or", "unwrap"]);
    }

    #[test]
    fn unterminated_constructs_consume_to_eof_without_panicking() {
        for src in ["\"never closed", "/* never closed", "r#\"never closed", "'"] {
            let toks = lex(src);
            assert!(!toks.is_empty());
            assert_eq!(toks.last().unwrap().end, src.len());
        }
    }

    #[test]
    fn lines_are_tracked_across_tokens() {
        let src = "a\nb\n  c // note\nd";
        let toks = lex(src);
        let lines: Vec<_> = toks.iter().map(|t| (t.text(src), t.line)).collect();
        assert_eq!(
            lines,
            vec![("a", 1), ("b", 2), ("c", 3), ("// note", 3), ("d", 4)]
        );
    }
}
