//! The cross-crate semantic rule tier.
//!
//! The per-file rules in [`rules`](crate::rules) check what one token
//! stream shows; the rules here check invariants that only exist *between*
//! files, using the [`Model`](crate::model::Model)'s item and call-edge
//! index:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `budget-poll` | every loop on a pattern-growth path reaches a `MiningBudget` poll |
//! | `lock-discipline` | no lock guard is live across a channel/join/socket blocking call |
//! | `wire-drift` | the wire verb table, parser, dispatcher, docs and stats surfaces agree |
//! | `exit-code-registry` | process exit codes are named constants, not numeric literals |
//!
//! All four are name-resolved, not type-resolved: call edges connect every
//! same-named fn in the workspace. That over-approximates reachability,
//! which errs in the safe direction for `budget-poll` (a loop is more
//! easily credited with reaching a poll) and is kept honest for
//! `lock-discipline` by scoping which primitives count as blocking.
//! Violations report into the same [`Violation`] stream as the per-file
//! tier, so `xlint::allow` suppression and the fixture machinery apply
//! unchanged.
//!
//! The tier needs the whole workspace to resolve call edges, so it runs
//! from [`run_workspace`](crate::run_workspace) (and `--changed`, which
//! analyzes everything and filters the report); explicit-file mode stays
//! per-file only.

use crate::lexer::TokenKind;
use crate::model::Model;
use crate::rules::Violation;
use crate::source::FileContext;
use std::collections::HashSet;

/// Files on the mining search/expansion paths: every loop here either
/// drives pattern growth (and must poll the budget) or is bounded
/// per-node bookkeeping (and must not call growth entry points).
const BUDGET_SCOPE: &[&str] = &[
    "crates/tpminer/src/search.rs",
    "crates/tpminer/src/parallel.rs",
    "crates/stream/src/pool.rs",
    "crates/stream/src/incremental.rs",
    "crates/stream/src/worker.rs",
];

/// Pattern-growth entry points: calling one of these (directly or
/// transitively) means the loop's iteration count scales with the
/// pattern-growth tree, which is exactly what the paper's budget exists
/// to bound.
const GROWTH_FNS: &[&str] = &[
    "expand",
    "make_root",
    "try_grow_root",
    "grow_roots",
    "queue_run",
    "mine_shard",
    "mine_sharded",
    "mine_partitions",
    "mine_indexed",
];

/// Budget/cancellation polls: reaching one of these each iteration keeps
/// the loop governed.
const POLL_FNS: &[&str] = &[
    "on_node",
    "on_candidates",
    "charge_node",
    "charge_candidates",
    "is_cancelled",
    "exceeded",
    "stopped",
];

/// Budget-carrying entry points: these take (or clone) a `MiningBudget`
/// into every unit of work they schedule, so reaching one satisfies the
/// poll requirement. They are listed separately because the sharded path
/// hands jobs across a channel — the name-resolved call graph cannot see
/// from `mine_sharded` to the worker's `mine_shard`, but the budget
/// provably rides along in the job.
const BUDGETED_ENTRYPOINTS: &[&str] = &["mine_sharded", "mine_partitions", "mine_indexed"];

/// Crates whose guards the lock-discipline rule watches.
const LOCK_SCOPE_PREFIXES: &[&str] = &["crates/stream/src/", "crates/server/src/"];

/// Blocking primitives of any arity: channel sends, socket/connection
/// I/O, sleeps and waits. `try_*` variants are different identifiers and
/// deliberately absent — non-blocking attempts under a guard are fine.
const BLOCKING_ANY_ARITY: &[&str] = &[
    "send",
    "recv_timeout",
    "read_line",
    "write_all",
    "write_fmt",
    "flush",
    "sleep",
    "wait",
    "wait_timeout",
    "park",
    "accept",
];

/// Blocking primitives only when called with no arguments: `recv()` is a
/// channel receive but `recv(buf)` would be socket API; `join()` is a
/// thread join but `join(sep)` is `slice::join`.
const BLOCKING_ZERO_ARITY: &[&str] = &["recv", "join"];

/// The wire-protocol anchor files. When one is absent from the analyzed
/// set the corresponding check silently skips (subset runs).
const WIRE_FILE: &str = "crates/interval-core/src/wire.rs";
const DISPATCH_FILE: &str = "crates/server/src/conn.rs";
const STATS_STRUCT_FILE: &str = "crates/stream/src/worker.rs";
/// Files that must surface every `PipelineStats` field: the server's
/// `STATS` renderer and the CLI's `--stats-json` emitter.
const STATS_SURFACES: &[&str] = &["crates/server/src/proto.rs", "crates/cli/src/stream_cmd.rs"];

/// The one module allowed to own numeric exit codes.
const EXIT_REGISTRY_FILE: &str = "crates/cli/src/exit.rs";

/// Runs every semantic rule over the analyzed file set. `docs` is the
/// content of `docs/SERVER.md` when available (the wire-drift docs check
/// skips without it).
pub fn check_workspace(ctxs: &[&FileContext], model: &Model, docs: Option<&str>) -> Vec<Violation> {
    let mut out = Vec::new();
    budget_poll(ctxs, model, &mut out);
    lock_discipline(ctxs, model, &mut out);
    wire_drift(ctxs, model, docs, &mut out);
    exit_code_registry(ctxs, model, &mut out);
    out
}

fn find<'a>(ctxs: &'a [&FileContext], path: &str) -> Option<&'a FileContext> {
    ctxs.iter().find(|c| c.path == path).copied()
}

fn violation(ctx: &FileContext, line: usize, rule: &'static str, message: String) -> Violation {
    Violation {
        file: ctx.path.clone(),
        line,
        rule,
        message,
    }
}

/// A loop found in a file: the keyword token's line plus the code-index
/// region from the keyword through the body's closing brace (the header
/// is included so `while !engine.stopped()` counts its condition).
struct Loop {
    line: usize,
    region: (usize, usize),
}

/// Finds every `for`/`while`/`loop` in non-test code. The body is the
/// first `{` at bracket depth 0 after the keyword (Rust forbids bare
/// struct literals in loop headers, so that brace is the body).
fn find_loops(ctx: &FileContext) -> Vec<Loop> {
    let mut out = Vec::new();
    let code = &ctx.code;
    for pos in 0..code.len() {
        let ti = code[pos];
        let tok = &ctx.tokens[ti];
        if tok.kind != TokenKind::Ident || ctx.is_test_line(tok.line) {
            continue;
        }
        if !matches!(ctx.text(ti), "for" | "while" | "loop") {
            continue;
        }
        // `for` in `impl Trait for Type` and lifetime bounds: a loop
        // keyword is preceded by start-of-statement punctuation, never by
        // an identifier or `>`.
        if pos > 0 {
            let prev = &ctx.tokens[code[pos - 1]];
            if prev.kind == TokenKind::Ident && !matches!(ctx.text(code[pos - 1]), "{" | "}" | ";")
            {
                let p = ctx.text(code[pos - 1]);
                if !matches!(p, "else") {
                    // `impl X for Y`, `label: for`, `&for<'a>` bounds all
                    // have an ident/`>` right before; real loops follow
                    // `{`, `}`, `;`, `=>`, `else`, or a label `:`.
                    continue;
                }
            }
            if ctx.text(code[pos - 1]) == ">" {
                continue;
            }
        }
        let mut depth = 0i32;
        let mut open = None;
        for (scan, &ti) in code.iter().enumerate().skip(pos + 1) {
            match ctx.text(ti) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    open = Some(scan);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        let mut depth = 0i32;
        let mut close = code.len().saturating_sub(1);
        for (scan, &ti) in code.iter().enumerate().skip(open) {
            match ctx.text(ti) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        close = scan;
                        break;
                    }
                }
                _ => {}
            }
        }
        out.push(Loop {
            line: tok.line,
            region: (pos, close + 1),
        });
    }
    out
}

/// Call names (`name(` / `.name(`, macros excluded) within a code region.
fn region_calls(ctx: &FileContext, region: (usize, usize)) -> Vec<String> {
    let mut out = Vec::new();
    for pos in region.0..region.1 {
        let ti = ctx.code[pos];
        if ctx.tokens[ti].kind != TokenKind::Ident {
            continue;
        }
        let next_is_paren = pos + 1 < region.1 && ctx.text(ctx.code[pos + 1]) == "(";
        if !next_is_paren {
            continue;
        }
        if pos > 0 && ctx.text(ctx.code[pos - 1]) == "fn" {
            continue;
        }
        out.push(ctx.text(ti).to_string());
    }
    out
}

/// `budget-poll`: in the mining-path files, a loop that (transitively)
/// calls a pattern-growth entry point must (transitively) reach a
/// `MiningBudget` poll or cancellation check each iteration. Bounded
/// per-node loops never call growth entry points and are exempt; growth
/// loops normally inherit their poll from `expand`'s `on_node` — this
/// fires when someone adds a growth path that bypasses the meter.
fn budget_poll(ctxs: &[&FileContext], model: &Model, out: &mut Vec<Violation>) {
    for ctx in ctxs {
        if !BUDGET_SCOPE.contains(&ctx.path.as_str()) {
            continue;
        }
        for lp in find_loops(ctx) {
            let calls = region_calls(ctx, lp.region);
            let growth: Vec<&String> = calls
                .iter()
                .filter(|c| GROWTH_FNS.contains(&c.as_str()))
                .collect();
            let drives_growth =
                !growth.is_empty() || model.reaches(&calls, |n| GROWTH_FNS.contains(&n));
            if !drives_growth {
                continue;
            }
            let polls = calls.iter().any(|c| is_poll(c))
                || stop_field_poll(ctx, lp.region)
                || model.reaches(&calls, is_poll);
            if !polls {
                let named = growth
                    .first()
                    .map(|g| g.as_str())
                    .unwrap_or("a growth path");
                out.push(violation(
                    ctx,
                    lp.line,
                    "budget-poll",
                    format!(
                        "loop drives pattern growth via `{named}` but never reaches a \
                         MiningBudget poll (on_node/on_candidates/is_cancelled/stopped); \
                         unbudgeted growth loops are how the pattern tree blows up"
                    ),
                ));
            }
        }
    }
}

/// Whether reaching `name` satisfies the poll requirement.
fn is_poll(name: &str) -> bool {
    POLL_FNS.contains(&name) || BUDGETED_ENTRYPOINTS.contains(&name)
}

/// `stop.is_some()` / `stop.take()` / `stop.is_none()` inside the region:
/// the engine's inline cancellation checks, which poll without a call
/// into the budget module.
fn stop_field_poll(ctx: &FileContext, region: (usize, usize)) -> bool {
    for pos in region.0..region.1.saturating_sub(2) {
        if ctx.text(ctx.code[pos]) == "stop"
            && ctx.text(ctx.code[pos + 1]) == "."
            && matches!(ctx.text(ctx.code[pos + 2]), "is_some" | "is_none" | "take")
        {
            return true;
        }
    }
    false
}

/// `lock-discipline`: in `stream`/`server`, a `let` binding whose
/// initializer takes a lock (`.lock()` / `.read()` / `.write()`, empty
/// parens) must not stay live across a blocking call — channel
/// send/recv, thread join, socket I/O, sleep/wait — whether the call is
/// direct or through a helper that blocks transitively. Guard liveness
/// ends at the enclosing block's `}` or an explicit `drop(guard)`.
fn lock_discipline(ctxs: &[&FileContext], model: &Model, out: &mut Vec<Violation>) {
    // Fn names that may transitively hit a blocking primitive. Durability
    // fns are excluded as direct sources: WAL flushes are disk I/O, which
    // this rule's deadlock scope (channels/joins/sockets) does not cover.
    let may_block = model.may_reach_set(|file, call| {
        !file.path.starts_with("crates/durability/")
            && is_blocking_name(&call.name, call.empty_args)
    });
    for ctx in ctxs {
        if !LOCK_SCOPE_PREFIXES.iter().any(|p| ctx.path.starts_with(p)) {
            continue;
        }
        for guard in find_guards(ctx) {
            scan_guard_region(ctx, &guard, &may_block, out);
        }
    }
}

fn is_blocking_name(name: &str, empty_args: bool) -> bool {
    BLOCKING_ANY_ARITY.contains(&name) || (empty_args && BLOCKING_ZERO_ARITY.contains(&name))
}

/// A live lock guard: its name, the line it was acquired on, and the
/// code-index where its liveness region starts (just past the `;`).
struct Guard {
    name: String,
    line: usize,
    start: usize,
}

fn find_guards(ctx: &FileContext) -> Vec<Guard> {
    let mut out = Vec::new();
    let code = &ctx.code;
    for pos in 0..code.len() {
        let ti = code[pos];
        if ctx.tokens[ti].kind != TokenKind::Ident
            || ctx.text(ti) != "let"
            || ctx.is_test_line(ctx.tokens[ti].line)
        {
            continue;
        }
        // `let [mut] NAME = …;` — destructuring patterns are skipped (a
        // heuristic the rule documents: guards bound through patterns are
        // rare and reviewable by eye).
        let mut at = pos + 1;
        if code.get(at).is_some_and(|&i| ctx.text(i) == "mut") {
            at += 1;
        }
        let Some(&name_ti) = code.get(at) else {
            continue;
        };
        if ctx.tokens[name_ti].kind != TokenKind::Ident {
            continue;
        }
        let name = ctx.text(name_ti).to_string();
        if code.get(at + 1).map(|&i| ctx.text(i)) != Some("=") {
            continue;
        }
        // Initializer runs to the `;` at bracket depth 0.
        let mut depth = 0i32;
        let mut end = None;
        for (scan, &ti) in code.iter().enumerate().skip(at + 2) {
            match ctx.text(ti) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth == 0 => {
                    end = Some(scan);
                    break;
                }
                _ => {}
            }
        }
        let Some(end) = end else { continue };
        // The lock call must sit outside any `{ … }` inside the
        // initializer: in `let x = { let g = m.lock(); g.len() };` the
        // guard lives and dies inside the block — `x` holds no lock.
        let mut brace = 0i32;
        let mut takes_lock = false;
        for p in at + 2..end.saturating_sub(2) {
            match ctx.text(code[p]) {
                "{" => brace += 1,
                "}" => brace -= 1,
                "." if brace == 0
                    && matches!(ctx.text(code[p + 1]), "lock" | "read" | "write")
                    && ctx.text(code[p + 2]) == "("
                    && code.get(p + 3).is_some_and(|&i| ctx.text(i) == ")") =>
                {
                    takes_lock = true;
                }
                _ => {}
            }
        }
        if takes_lock {
            out.push(Guard {
                name,
                line: ctx.tokens[name_ti].line,
                start: end + 1,
            });
        }
    }
    out
}

/// Walks the guard's liveness region flagging blocking calls. The region
/// ends when the enclosing block closes (brace depth drops below the
/// binding's level) or at `drop(guard)`.
fn scan_guard_region(
    ctx: &FileContext,
    guard: &Guard,
    may_block: &HashSet<String>,
    out: &mut Vec<Violation>,
) {
    let code = &ctx.code;
    let mut depth = 0i32;
    let mut pos = guard.start;
    while pos < code.len() {
        let text = ctx.text(code[pos]);
        match text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return;
                }
            }
            "drop"
                if code.get(pos + 1).is_some_and(|&i| ctx.text(i) == "(")
                    && code
                        .get(pos + 2)
                        .is_some_and(|&i| ctx.text(i) == guard.name)
                    && code.get(pos + 3).is_some_and(|&i| ctx.text(i) == ")") =>
            {
                return;
            }
            _ => {
                let ti = code[pos];
                let tok = &ctx.tokens[ti];
                if tok.kind == TokenKind::Ident
                    && code.get(pos + 1).is_some_and(|&i| ctx.text(i) == "(")
                    && !ctx.is_test_line(tok.line)
                {
                    let empty = code.get(pos + 2).is_some_and(|&i| ctx.text(i) == ")");
                    let blocking = is_blocking_name(text, empty) || may_block.contains(text);
                    if blocking {
                        out.push(violation(
                            ctx,
                            tok.line,
                            "lock-discipline",
                            format!(
                                "guard `{}` (acquired on line {}) is live across blocking \
                                 call `{}()`; clone what you need, drop the guard, then \
                                 block — a held lock across channel/join/socket ops is \
                                 this codebase's deadlock shape",
                                guard.name, guard.line, text
                            ),
                        ));
                    }
                }
            }
        }
        pos += 1;
    }
}

/// `wire-drift`: the protocol's five surfaces — `VERBS`, the parser
/// match, the `Request` enum, the server dispatcher, `docs/SERVER.md` —
/// plus the `PipelineStats` reporting surfaces must all agree.
fn wire_drift(ctxs: &[&FileContext], model: &Model, docs: Option<&str>, out: &mut Vec<Violation>) {
    if let Some(wire) = find(ctxs, WIRE_FILE) {
        let (verbs, verbs_line) = extract_verbs(wire);
        let parse_arms = string_match_arms(wire);
        let dispatch = find(ctxs, DISPATCH_FILE).map(request_dispatch_arms);
        for verb in &verbs {
            if !parse_arms.contains(verb) {
                out.push(violation(
                    wire,
                    verbs_line,
                    "wire-drift",
                    format!("verb {verb} is in VERBS but has no parse arm in wire.rs"),
                ));
            }
            if let Some(dispatch) = &dispatch {
                let variant = title_case(verb);
                if !dispatch.contains(&variant) {
                    out.push(violation(
                        wire,
                        verbs_line,
                        "wire-drift",
                        format!(
                            "verb {verb} has no `Request::{variant}` dispatch arm in \
                             crates/server/src/conn.rs"
                        ),
                    ));
                }
            }
            if let Some(docs) = docs {
                if !docs.contains(verb.as_str()) {
                    out.push(violation(
                        wire,
                        verbs_line,
                        "wire-drift",
                        format!("verb {verb} is not documented in docs/SERVER.md"),
                    ));
                }
            }
        }
        // Reverse direction: every Request variant must be a verb.
        if let Some(file) = model.file(WIRE_FILE) {
            if let Some(req) = file.enums.iter().find(|e| e.name == "Request") {
                for (variant, line) in &req.variants {
                    if !verbs.contains(&variant.to_uppercase()) {
                        out.push(violation(
                            wire,
                            *line,
                            "wire-drift",
                            format!("Request::{variant} has no entry in the VERBS table"),
                        ));
                    }
                }
            }
        }
    }

    // Every public PipelineStats field reaches both reporting surfaces.
    if let Some(stats_file) = model.file(STATS_STRUCT_FILE) {
        if let Some(stats) = stats_file
            .structs
            .iter()
            .find(|s| s.name == "PipelineStats")
        {
            let worker = find(ctxs, STATS_STRUCT_FILE);
            for surface_path in STATS_SURFACES {
                let Some(surface) = find(ctxs, surface_path) else {
                    continue;
                };
                for field in stats.fields.iter().filter(|f| f.public) {
                    if !field_is_read(surface, &field.name) {
                        if let Some(worker) = worker {
                            out.push(violation(
                                worker,
                                field.line,
                                "wire-drift",
                                format!(
                                    "PipelineStats.{} is not surfaced in {surface_path}; \
                                     STATS/--stats-json must report every pipeline counter",
                                    field.name
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
}

/// The string literals of the `VERBS` const initializer, plus the line
/// the const is declared on (every verb violation anchors there).
fn extract_verbs(ctx: &FileContext) -> (Vec<String>, usize) {
    let code = &ctx.code;
    for pos in 0..code.len() {
        if ctx.text(code[pos]) != "VERBS" {
            continue;
        }
        let line = ctx.tokens[code[pos]].line;
        // Walk to the `=` then collect StrLits until the closing `;`.
        let mut verbs = Vec::new();
        let mut in_init = false;
        for &ti in &code[pos + 1..] {
            match ctx.text(ti) {
                "=" if !in_init => in_init = true,
                ";" if in_init => return (verbs, line),
                _ if in_init && ctx.tokens[ti].kind == TokenKind::StrLit => {
                    verbs.push(unquote(ctx.text(ti)));
                }
                _ => {}
            }
        }
        return (verbs, line);
    }
    (Vec::new(), 1)
}

/// Every string literal directly followed by `=>` — the parser's (and
/// keyword sub-parsers') match arms.
fn string_match_arms(ctx: &FileContext) -> HashSet<String> {
    let code = &ctx.code;
    let mut out = HashSet::new();
    for pos in 0..code.len().saturating_sub(2) {
        if ctx.tokens[code[pos]].kind == TokenKind::StrLit
            && ctx.text(code[pos + 1]) == "="
            && ctx.text(code[pos + 2]) == ">"
        {
            out.insert(unquote(ctx.text(code[pos])));
        }
    }
    out
}

/// Every `Request::Name` path in the dispatcher.
fn request_dispatch_arms(ctx: &FileContext) -> HashSet<String> {
    let code = &ctx.code;
    let mut out = HashSet::new();
    for pos in 0..code.len().saturating_sub(3) {
        if ctx.text(code[pos]) == "Request"
            && ctx.text(code[pos + 1]) == ":"
            && ctx.text(code[pos + 2]) == ":"
            && ctx.tokens[code[pos + 3]].kind == TokenKind::Ident
        {
            out.insert(ctx.text(code[pos + 3]).to_string());
        }
    }
    out
}

/// Whether `.field` (a read of that struct field) appears anywhere in the
/// file's non-test code.
fn field_is_read(ctx: &FileContext, field: &str) -> bool {
    let code = &ctx.code;
    (0..code.len().saturating_sub(1))
        .any(|pos| ctx.text(code[pos]) == "." && ctx.text(code[pos + 1]) == field)
}

fn unquote(s: &str) -> String {
    s.trim_matches('"').to_string()
}

fn title_case(verb: &str) -> String {
    let mut chars = verb.chars();
    match chars.next() {
        Some(first) => first
            .to_uppercase()
            .chain(chars.flat_map(char::to_lowercase))
            .collect(),
        None => String::new(),
    }
}

/// `exit-code-registry`: numeric process exits (`process::exit(2)`,
/// `ExitCode::from(2)`) are banned everywhere but the registry module —
/// codes must be named constants so `cli/src/exit.rs` stays the single
/// source of truth. `exit::NAME` references are validated against the
/// registry's actual constants when it is in the analyzed set.
fn exit_code_registry(ctxs: &[&FileContext], model: &Model, out: &mut Vec<Violation>) {
    let registry: Option<HashSet<&str>> = model
        .file(EXIT_REGISTRY_FILE)
        .map(|f| f.consts.iter().map(|c| c.name.as_str()).collect());
    for ctx in ctxs {
        if ctx.path == EXIT_REGISTRY_FILE {
            continue;
        }
        let code = &ctx.code;
        for pos in 0..code.len() {
            let ti = code[pos];
            let tok = &ctx.tokens[ti];
            if tok.kind != TokenKind::Ident || ctx.is_test_line(tok.line) {
                continue;
            }
            match ctx.text(ti) {
                // `exit ( <num> )` — bare or `process::exit`.
                "exit" if is_numeric_call(ctx, pos) => {
                    out.push(violation(
                        ctx,
                        tok.line,
                        "exit-code-registry",
                        "process exit with a numeric literal; use the named constants \
                         from cli/src/exit.rs (or a local constant mirroring that \
                         registry in crates that cannot depend on the CLI)"
                            .to_string(),
                    ));
                }
                // `ExitCode :: from ( <num> )`.
                "from"
                    if pos >= 3
                        && ctx.text(code[pos - 1]) == ":"
                        && ctx.text(code[pos - 2]) == ":"
                        && ctx.text(code[pos - 3]) == "ExitCode"
                        && is_numeric_call(ctx, pos) =>
                {
                    out.push(violation(
                        ctx,
                        tok.line,
                        "exit-code-registry",
                        "ExitCode::from with a numeric literal; name the code after \
                         the cli/src/exit.rs registry so every exit is greppable"
                            .to_string(),
                    ));
                }
                // `exit :: NAME` must name a registered constant.
                "exit"
                    if ctx.next_code(pos).is_some_and(|n| ctx.text(n) == ":")
                        && pos + 3 < code.len()
                        && ctx.text(code[pos + 2]) == ":" =>
                {
                    if let Some(registry) = &registry {
                        let name = ctx.text(code[pos + 3]);
                        let is_const = ctx.tokens[code[pos + 3]].kind == TokenKind::Ident
                            && name.chars().all(|c| c.is_ascii_uppercase() || c == '_');
                        if is_const && !registry.contains(name) {
                            out.push(violation(
                                ctx,
                                tok.line,
                                "exit-code-registry",
                                format!(
                                    "exit::{name} is not a constant in cli/src/exit.rs; \
                                     register the code there before using it"
                                ),
                            ));
                        }
                    }
                }
                _ => {}
            }
        }
    }
}

/// `<ident at pos> ( <Num> )`.
fn is_numeric_call(ctx: &FileContext, pos: usize) -> bool {
    let code = &ctx.code;
    pos + 3 < code.len()
        && ctx.text(code[pos + 1]) == "("
        && ctx.tokens[code[pos + 2]].kind == TokenKind::Num
        && ctx.text(code[pos + 3]) == ")"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;
    use crate::source::{CrateKind, FileContext};

    fn ctx(path: &str, src: &str) -> FileContext {
        let name = path
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("demo");
        FileContext::new(path.into(), name.into(), CrateKind::Lib, src.into())
    }

    fn check(files: &[(&str, &str)], docs: Option<&str>) -> Vec<Violation> {
        let ctxs: Vec<FileContext> = files.iter().map(|(p, s)| ctx(p, s)).collect();
        let refs: Vec<&FileContext> = ctxs.iter().collect();
        let model = Model::build(&refs);
        check_workspace(&refs, &model, docs)
    }

    #[test]
    fn budget_poll_flags_unpolled_growth_loops_and_passes_polled_ones() {
        let v = check(
            &[(
                "crates/tpminer/src/search.rs",
                "impl Engine {\n\
                 fn bad(&mut self) {\n    loop {\n        self.expand_all();\n    }\n}\n\
                 fn good(&mut self) {\n    loop {\n        self.meter.on_node();\n        self.expand_all();\n    }\n}\n\
                 fn expand_all(&mut self) { self.expand(0); }\n\
                 fn expand(&mut self, _n: u32) {}\n\
                 fn bookkeeping(&self) { for _x in 0..3 { self.tally(); } }\n\
                 fn tally(&self) {}\n\
                 }\n",
            )],
            None,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "budget-poll");
        assert_eq!(v[0].line, 3, "the unpolled loop only");
    }

    #[test]
    fn budget_poll_credits_transitive_polls_and_stop_checks() {
        let v = check(
            &[(
                "crates/tpminer/src/parallel.rs",
                "impl Miner {\n\
                 fn run(&mut self) {\n    while self.stop.is_none() {\n        self.try_grow_root(1);\n    }\n}\n\
                 fn deep(&mut self) {\n    loop {\n        self.step();\n    }\n}\n\
                 fn step(&mut self) { self.try_grow_root(2); self.meter.exceeded(); }\n\
                 fn try_grow_root(&mut self, _r: u32) {}\n\
                 }\n",
            )],
            None,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn budget_poll_ignores_out_of_scope_files_and_test_code() {
        let v = check(
            &[
                (
                    "crates/stream/src/window.rs",
                    "fn f(e: &mut E) { loop { e.expand(); } }\n",
                ),
                (
                    "crates/tpminer/src/search.rs",
                    "#[cfg(test)]\nmod tests {\n    fn t(e: &mut E) { loop { e.expand(); } }\n}\nfn expand() {}\n",
                ),
            ],
            None,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn lock_discipline_flags_guard_across_send_and_transitive_blocks() {
        let v = check(
            &[(
                "crates/server/src/session.rs",
                "impl S {\n\
                 fn direct(&self) {\n    let guard = self.state.lock();\n    self.tx.send(1);\n    guard.touch();\n}\n\
                 fn indirect(&self) {\n    let guard = self.state.lock();\n    self.helper();\n}\n\
                 fn helper(&self) { self.tx.send(2); }\n\
                 fn fine(&self) {\n    let guard = self.state.lock();\n    let n = guard.len();\n    drop(guard);\n    self.tx.send(n);\n}\n\
                 fn scoped(&self) {\n    { let guard = self.state.lock(); guard.touch(); }\n    self.tx.send(3);\n}\n\
                 }\n",
            )],
            None,
        );
        let lines: Vec<usize> = v.iter().map(|x| x.line).collect();
        assert_eq!(
            v.iter().filter(|x| x.rule == "lock-discipline").count(),
            2,
            "{v:?}"
        );
        assert_eq!(
            lines,
            [4, 9],
            "direct send + transitive helper, not the dropped/scoped ones"
        );
    }

    #[test]
    fn lock_discipline_ignores_block_scoped_guards_in_initializers() {
        // `let job = { let g = m.lock(); … };` binds the block's *result*;
        // the guard died at the inner `}`, so blocking afterwards is the
        // recommended pattern, not a violation.
        let v = check(
            &[(
                "crates/server/src/session.rs",
                "impl S {\nfn sync(&self) {\n    let job = {\n        let mut guard = self.state.lock();\n        guard.freeze()\n    };\n    self.tx.send(job);\n}\n}\n",
            )],
            None,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn lock_discipline_permits_try_variants_and_nonempty_read_write() {
        let v = check(
            &[(
                "crates/stream/src/snapshot.rs",
                "fn publish(&self) {\n    let subs = self.subs.lock();\n    for s in subs.iter() { s.tx.try_send(1); }\n}\n\
                 fn io(sock: &mut T, buf: &mut [u8]) {\n    let n = sock.read(buf);\n    let m = sock.write(buf);\n    sock.flush();\n}\n",
            )],
            None,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn lock_discipline_catches_zero_arg_recv_and_join_only() {
        let v = check(
            &[(
                "crates/stream/src/worker.rs",
                "fn bad(&self) {\n    let g = self.m.lock();\n    let _ = self.rx.recv();\n    let _ = self.h.join();\n    g.touch();\n}\n\
                 fn fine(&self, parts: &[String]) {\n    let g = self.m.lock();\n    let _ = parts.join(\", \");\n    g.touch();\n}\n",
            )],
            None,
        );
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "lock-discipline"));
    }

    const WIRE_OK: &str = "pub const VERBS: &[&str] = &[\"PING\", \"QUERY\"];\n\
        pub enum Request {\n    Ping,\n    Query { stream: String },\n}\n\
        fn parse(verb: &str) {\n    match verb {\n        \"PING\" => {}\n        \"QUERY\" => {}\n        _ => {}\n    }\n}\n";
    const CONN_OK: &str = "fn dispatch(r: Request) {\n    match r {\n        Request::Ping => {}\n        Request::Query { stream } => {}\n    }\n}\n";

    #[test]
    fn wire_drift_is_silent_when_all_surfaces_agree() {
        let v = check(
            &[
                ("crates/interval-core/src/wire.rs", WIRE_OK),
                ("crates/server/src/conn.rs", CONN_OK),
            ],
            Some("## Commands\nPING | QUERY\n"),
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn wire_drift_catches_each_missing_surface() {
        // Verb with no parse arm and no docs mention.
        let wire_missing = "pub const VERBS: &[&str] = &[\"PING\", \"QUERY\", \"DRAIN\"];\n\
            pub enum Request {\n    Ping,\n    Query { stream: String },\n    Drain,\n}\n\
            fn parse(verb: &str) {\n    match verb {\n        \"PING\" => {}\n        \"QUERY\" => {}\n        \"DRAIN\" => {}\n        _ => {}\n    }\n}\n";
        let v = check(
            &[
                ("crates/interval-core/src/wire.rs", wire_missing),
                ("crates/server/src/conn.rs", CONN_OK),
            ],
            Some("PING | QUERY\n"),
        );
        let msgs: Vec<&str> = v.iter().map(|x| x.message.as_str()).collect();
        assert!(
            msgs.iter()
                .any(|m| m.contains("DRAIN") && m.contains("dispatch")),
            "{msgs:?}"
        );
        assert!(
            msgs.iter()
                .any(|m| m.contains("DRAIN") && m.contains("SERVER.md")),
            "{msgs:?}"
        );
        assert!(v.iter().all(|x| x.rule == "wire-drift"));

        // Variant with no VERBS entry.
        let wire_extra_variant = "pub const VERBS: &[&str] = &[\"PING\"];\n\
            pub enum Request {\n    Ping,\n    Rogue,\n}\n\
            fn parse(verb: &str) {\n    match verb {\n        \"PING\" => {}\n        _ => {}\n    }\n}\n";
        let v = check(
            &[("crates/interval-core/src/wire.rs", wire_extra_variant)],
            None,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("Request::Rogue"), "{v:?}");
    }

    #[test]
    fn wire_drift_checks_pipeline_stats_surfaces() {
        let worker = "pub struct PipelineStats {\n    pub done: u64,\n    pub lag: u64,\n}\n";
        let proto = "fn stats_line(ps: &PipelineStats) -> String { format!(\"{}\", ps.done) }\n";
        let cli =
            "fn stats_json(ps: &PipelineStats) -> String { format!(\"{} {}\", ps.done, ps.lag) }\n";
        let v = check(
            &[
                ("crates/stream/src/worker.rs", worker),
                ("crates/server/src/proto.rs", proto),
                ("crates/cli/src/stream_cmd.rs", cli),
            ],
            None,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("PipelineStats.lag"), "{v:?}");
        assert!(v[0].message.contains("proto.rs"), "{v:?}");
        assert_eq!(v[0].file, "crates/stream/src/worker.rs");
    }

    #[test]
    fn exit_code_registry_flags_numeric_exits_and_unknown_constants() {
        let v = check(
            &[
                (
                    "crates/cli/src/exit.rs",
                    "pub const SUCCESS: u8 = 0;\npub const USAGE: u8 = 2;\n",
                ),
                (
                    "crates/cli/src/main.rs",
                    "fn a() { std::process::exit(2); }\n\
                     fn b() -> ExitCode { ExitCode::from(3) }\n\
                     fn c() { std::process::exit(i32::from(exit::USAGE)); }\n\
                     fn d() { std::process::exit(i32::from(exit::BOGUS)); }\n",
                ),
            ],
            None,
        );
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "exit-code-registry"));
        assert!(v.iter().any(|x| x.line == 1), "numeric process::exit");
        assert!(v.iter().any(|x| x.line == 2), "numeric ExitCode::from");
        assert!(
            v.iter().any(|x| x.line == 4 && x.message.contains("BOGUS")),
            "{v:?}"
        );
    }

    #[test]
    fn exit_code_registry_is_quiet_in_the_registry_and_tests() {
        let v = check(
            &[
                (
                    "crates/cli/src/exit.rs",
                    "pub const SUCCESS: u8 = 0;\nfn die() { std::process::exit(0); }\n",
                ),
                (
                    "crates/cli/src/main.rs",
                    "#[cfg(test)]\nmod tests {\n    fn t() { std::process::exit(7); }\n}\n",
                ),
            ],
            None,
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
