//! Human and JSON rendering of a lint run.
//!
//! JSON is emitted by hand (xlint is dependency-free by design); the
//! schema is small and stable:
//!
//! ```json
//! {
//!   "checked_files": 42,
//!   "suppressed": 3,
//!   "violations": [
//!     {"file": "crates/x/src/a.rs", "line": 7, "rule": "no-panic-lib",
//!      "message": "…"}
//!   ]
//! }
//! ```

use crate::rules::Violation;
use std::fmt::Write as _;

/// Outcome of linting a file set.
pub struct Report {
    pub checked_files: usize,
    pub suppressed: usize,
    pub violations: Vec<Violation>,
}

impl Report {
    /// Whether the run is clean (exit code 0).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// One `file:line: [rule] message` row per violation plus a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
        }
        let _ = writeln!(
            out,
            "xlint: {} file(s) checked, {} violation(s), {} suppressed by allow",
            self.checked_files,
            self.violations.len(),
            self.suppressed
        );
        out
    }

    /// The JSON document described in the module docs.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"checked_files\": {},", self.checked_files);
        let _ = writeln!(out, "  \"suppressed\": {},", self.suppressed);
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                json_str(&v.file),
                v.line,
                json_str(v.rule),
                json_str(&v.message)
            );
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes a string per RFC 8259.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_and_control_chars() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_report_renders_empty_array() {
        let r = Report {
            checked_files: 3,
            suppressed: 0,
            violations: vec![],
        };
        assert!(r.is_clean());
        assert!(r.render_json().contains("\"violations\": []"));
    }

    #[test]
    fn violations_render_in_both_formats() {
        let r = Report {
            checked_files: 1,
            suppressed: 2,
            violations: vec![Violation {
                file: "crates/x/src/a.rs".into(),
                line: 7,
                rule: "no-panic-lib",
                message: "it panics".into(),
            }],
        };
        assert!(!r.is_clean());
        let human = r.render_human();
        assert!(human.contains("crates/x/src/a.rs:7: [no-panic-lib] it panics"));
        assert!(human.contains("2 suppressed"));
        let json = r.render_json();
        assert!(json.contains("\"line\": 7"));
        assert!(json.contains("\"rule\": \"no-panic-lib\""));
    }
}
