//! Human and JSON rendering of a lint run.
//!
//! JSON is emitted by hand (xlint is dependency-free by design); the
//! schema is small and stable:
//!
//! ```json
//! {
//!   "checked_files": 42,
//!   "suppressed": 3,
//!   "violations": [
//!     {"file": "crates/x/src/a.rs", "line": 7, "rule": "no-panic-lib",
//!      "message": "…"}
//!   ]
//! }
//! ```

use crate::rules::{Violation, RULES};
use std::fmt::Write as _;

/// Rules the engine emits that are not in the configurable catalogue:
/// the allow-directive hygiene checks.
const META_RULES: &[(&str, &str)] = &[
    ("malformed-allow", "xlint::allow directive without a reason"),
    (
        "unknown-rule-allow",
        "xlint::allow references an unknown rule",
    ),
    ("unused-allow", "xlint::allow suppresses nothing"),
];

/// Outcome of linting a file set.
pub struct Report {
    pub checked_files: usize,
    pub suppressed: usize,
    pub violations: Vec<Violation>,
}

impl Report {
    /// Whether the run is clean (exit code 0).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// One `file:line: [rule] message` row per violation plus a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
        }
        let _ = writeln!(
            out,
            "xlint: {} file(s) checked, {} violation(s), {} suppressed by allow",
            self.checked_files,
            self.violations.len(),
            self.suppressed
        );
        out
    }

    /// The JSON document described in the module docs.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"checked_files\": {},", self.checked_files);
        let _ = writeln!(out, "  \"suppressed\": {},", self.suppressed);
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                json_str(&v.file),
                v.line,
                json_str(v.rule),
                json_str(&v.message)
            );
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// A minimal SARIF 2.1.0 document, the schema GitHub code scanning
    /// ingests for inline annotations. Every catalogue rule (plus the
    /// allow-hygiene meta rules) is declared in the driver so `ruleId`
    /// references always resolve; each violation becomes one `result`
    /// with a single physical location.
    pub fn render_sarif(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
        out.push_str("  \"version\": \"2.1.0\",\n");
        out.push_str("  \"runs\": [\n    {\n");
        out.push_str("      \"tool\": {\n        \"driver\": {\n");
        out.push_str("          \"name\": \"xlint\",\n");
        out.push_str("          \"informationUri\": \"CONTRIBUTING.md#lint-policy\",\n");
        out.push_str("          \"rules\": [");
        let all_rules = RULES.iter().chain(META_RULES.iter());
        for (i, (id, desc)) in all_rules.enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}",
                json_str(id),
                json_str(desc)
            );
        }
        out.push_str("\n          ]\n        }\n      },\n");
        out.push_str("      \"results\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n        {{\"ruleId\": {}, \"level\": \"error\", \
                 \"message\": {{\"text\": {}}}, \"locations\": [{{\
                 \"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
                 \"region\": {{\"startLine\": {}}}}}}}]}}",
                json_str(v.rule),
                json_str(&v.message),
                json_str(&v.file),
                v.line
            );
        }
        if !self.violations.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("]\n    }\n  ]\n}\n");
        out
    }
}

/// Escapes a string per RFC 8259.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_and_control_chars() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_report_renders_empty_array() {
        let r = Report {
            checked_files: 3,
            suppressed: 0,
            violations: vec![],
        };
        assert!(r.is_clean());
        assert!(r.render_json().contains("\"violations\": []"));
    }

    #[test]
    fn violations_render_in_both_formats() {
        let r = Report {
            checked_files: 1,
            suppressed: 2,
            violations: vec![Violation {
                file: "crates/x/src/a.rs".into(),
                line: 7,
                rule: "no-panic-lib",
                message: "it panics".into(),
            }],
        };
        assert!(!r.is_clean());
        let human = r.render_human();
        assert!(human.contains("crates/x/src/a.rs:7: [no-panic-lib] it panics"));
        assert!(human.contains("2 suppressed"));
        let json = r.render_json();
        assert!(json.contains("\"line\": 7"));
        assert!(json.contains("\"rule\": \"no-panic-lib\""));
    }

    #[test]
    fn sarif_declares_every_rule_and_locates_violations() {
        let r = Report {
            checked_files: 1,
            suppressed: 0,
            violations: vec![Violation {
                file: "crates/x/src/a.rs".into(),
                line: 7,
                rule: "budget-poll",
                message: "unpolled \"growth\" loop".into(),
            }],
        };
        let sarif = r.render_sarif();
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        // Every catalogue rule plus the meta rules is declared.
        for (id, _) in RULES.iter().chain(META_RULES.iter()) {
            assert!(
                sarif.contains(&format!("\"id\": \"{id}\"")),
                "missing driver rule {id}"
            );
        }
        assert!(sarif.contains("\"ruleId\": \"budget-poll\""));
        assert!(sarif.contains("\"uri\": \"crates/x/src/a.rs\""));
        assert!(sarif.contains("\"startLine\": 7"));
        assert!(
            sarif.contains("unpolled \\\"growth\\\" loop"),
            "escaped message"
        );
    }

    #[test]
    fn sarif_with_no_violations_has_empty_results() {
        let r = Report {
            checked_files: 2,
            suppressed: 1,
            violations: vec![],
        };
        assert!(r.render_sarif().contains("\"results\": []"));
    }
}
