//! Per-file analysis context: the token stream plus the two structural
//! facts every rule needs — which lines are test code, and which lines
//! carry an `xlint::allow` directive.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::BTreeSet;

/// How a crate is classified for rule purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateKind {
    /// Library crate: the panic-free contract and clock confinement apply.
    Lib,
    /// Binary / tooling crate (`cli`, `bench`, `xlint`): exempt from
    /// library-only rules, still subject to structural ones.
    Tool,
}

/// A parsed `// xlint::allow(<rule>): <reason>` directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Rule the directive suppresses.
    pub rule: String,
    /// Mandatory justification (everything after the `:`).
    pub reason: String,
    /// Line the directive comment starts on.
    pub directive_line: usize,
    /// Line whose violations it suppresses (same line for trailing
    /// comments, the next code line for comment-only lines).
    pub target_line: usize,
}

/// Token stream plus derived structure for one source file.
pub struct FileContext {
    /// Workspace-relative path with forward slashes (stable across hosts).
    pub path: String,
    /// Name of the owning crate (directory name under `crates/`).
    pub crate_name: String,
    /// Library or tool crate.
    pub kind: CrateKind,
    /// The raw source text.
    pub src: String,
    /// All tokens, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens, in order.
    pub code: Vec<usize>,
    /// Inclusive line ranges covered by `#[test]` / `#[cfg(test)]` items.
    test_regions: Vec<(usize, usize)>,
    /// Allow directives parsed out of comments.
    pub allows: Vec<AllowDirective>,
    /// Lines that carry at least one non-comment token.
    code_lines: BTreeSet<usize>,
}

impl FileContext {
    pub fn new(path: String, crate_name: String, kind: CrateKind, src: String) -> Self {
        let tokens = lex(&src);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let code_lines: BTreeSet<usize> = code
            .iter()
            .flat_map(|&i| {
                let t = &tokens[i];
                t.line..=t.end_line(&src)
            })
            .collect();
        let test_regions = find_test_regions(&src, &tokens, &code);
        let allows = parse_allows(&src, &tokens, &code_lines);
        Self {
            path,
            crate_name,
            kind,
            src,
            tokens,
            code,
            test_regions,
            allows,
            code_lines,
        }
    }

    /// Whether `line` lies inside a test-gated item (`#[test]` fn,
    /// `#[cfg(test)]` module, or a `cfg(any(test, …))`-gated item — the
    /// fault-injection hooks ride the same gate and panic by design).
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(start, end)| (start..=end).contains(&line))
    }

    /// Text of token `i`.
    pub fn text(&self, i: usize) -> &str {
        self.tokens[i].text(&self.src)
    }

    /// The code token following `code[pos]`, if any.
    pub fn next_code(&self, pos: usize) -> Option<usize> {
        self.code.get(pos + 1).copied()
    }

    /// The code token preceding `code[pos]`, if any.
    pub fn prev_code(&self, pos: usize) -> Option<usize> {
        pos.checked_sub(1).map(|p| self.code[p])
    }

    /// Whether any non-comment token sits on `line`.
    pub fn line_has_code(&self, line: usize) -> bool {
        self.code_lines.contains(&line)
    }
}

/// Finds line ranges of items annotated with a test-marking attribute.
///
/// An attribute marks its item as test code when it mentions the `test`
/// identifier and does not mention `not` (so `#[cfg(not(test))]` items stay
/// linted while `#[test]`, `#[cfg(test)]` and `#[cfg(any(test, feature =
/// "…"))]` items are exempt). The region runs from the attribute to the
/// end of the item: through the matching `}` of the first top-level brace
/// block, or through the first top-level `;` for bodiless items.
fn find_test_regions(src: &str, tokens: &[Token], code: &[usize]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut pos = 0usize;
    while pos < code.len() {
        let ti = code[pos];
        if tokens[ti].text(src) != "#" {
            pos += 1;
            continue;
        }
        // Parse one attribute: `#` (`!`)? `[` … matching `]`.
        let mut scan = pos + 1;
        if scan < code.len() && tokens[code[scan]].text(src) == "!" {
            // Inner attributes (`#![…]`) apply to the enclosing scope, not
            // a following item; skip them entirely.
            pos += 1;
            continue;
        }
        if scan >= code.len() || tokens[code[scan]].text(src) != "[" {
            pos += 1;
            continue;
        }
        let mut depth = 0i32;
        let mut mentions_test = false;
        let mut mentions_not = false;
        let attr_end;
        loop {
            if scan >= code.len() {
                return regions; // malformed tail; nothing more to find
            }
            let t = &tokens[code[scan]];
            match t.text(src) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        attr_end = scan;
                        break;
                    }
                }
                "test" if t.kind == TokenKind::Ident => mentions_test = true,
                "not" if t.kind == TokenKind::Ident => mentions_not = true,
                _ => {}
            }
            scan += 1;
        }
        if !mentions_test || mentions_not {
            pos = attr_end + 1;
            continue;
        }
        // Attribute marks a test item: find where the item ends. Skip any
        // further attributes first, then scan for `{`/`;` at depth 0.
        let start_line = tokens[ti].line;
        let mut cursor = attr_end + 1;
        let mut nest = 0i32;
        let mut end_line = tokens[code[attr_end]].end_line(src);
        while cursor < code.len() {
            let t = &tokens[code[cursor]];
            match t.text(src) {
                "{" | "(" | "[" => nest += 1,
                "}" | ")" | "]" => {
                    nest -= 1;
                    if nest == 0 && t.text(src) == "}" {
                        end_line = t.end_line(src);
                        break;
                    }
                }
                ";" if nest == 0 => {
                    end_line = t.line;
                    break;
                }
                _ => {}
            }
            end_line = t.end_line(src);
            cursor += 1;
        }
        regions.push((start_line, end_line));
        // Continue after the region to catch sibling items; nested
        // attributes inside the region are redundant but harmless.
        pos = cursor.max(attr_end + 1);
    }
    regions
}

/// Extracts `xlint::allow(<rule>): <reason>` directives from comments.
///
/// A directive trailing code applies to its own line; a directive on a
/// comment-only line applies to the next line carrying code (directives
/// stack: several comment lines in a row may target the same code line).
/// A directive missing its reason is kept with an empty reason — the
/// engine reports it as malformed instead of honoring it.
fn parse_allows(src: &str, tokens: &[Token], code_lines: &BTreeSet<usize>) -> Vec<AllowDirective> {
    let mut allows = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let text = tok.text(src);
        let mut search_from = 0usize;
        while let Some(found) = text[search_from..].find("xlint::allow(") {
            let at = search_from + found + "xlint::allow(".len();
            let rest = &text[at..];
            let Some(close) = rest.find(')') else { break };
            let rule = rest[..close].trim().to_string();
            // Only well-formed rule names are directives; prose mentions
            // like `xlint::allow(...)` or `xlint::allow(<rule>)` in docs
            // must not parse as (malformed) suppressions.
            if rule.is_empty()
                || !rule
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
            {
                search_from = at + close;
                continue;
            }
            let after = &rest[close + 1..];
            let reason = after
                .strip_prefix(':')
                .map(|r| {
                    // Reason runs to end of line within the comment.
                    r.split('\n').next().unwrap_or("").trim().to_string()
                })
                .unwrap_or_default();
            // Trailing directive ⇒ same line; standalone ⇒ next code line.
            let directive_line = tok.line;
            let has_code_before = tokens[..i].iter().any(|t| {
                !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
                    && t.end_line(src) == directive_line
            });
            let target_line = if has_code_before {
                directive_line
            } else {
                let after_line = tok.end_line(src);
                code_lines
                    .range(after_line + 1..)
                    .next()
                    .copied()
                    .unwrap_or(directive_line)
            };
            allows.push(AllowDirective {
                rule,
                reason,
                directive_line,
                target_line,
            });
            search_from = at + close;
        }
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(src: &str) -> FileContext {
        FileContext::new(
            "crates/demo/src/lib.rs".into(),
            "demo".into(),
            CrateKind::Lib,
            src.into(),
        )
    }

    #[test]
    fn cfg_test_module_is_a_test_region() {
        let src = "fn live() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\nfn also_live() {}\n";
        let c = ctx(src);
        assert!(!c.is_test_line(1));
        assert!(c.is_test_line(3));
        assert!(c.is_test_line(6));
        assert!(!c.is_test_line(8));
    }

    #[test]
    fn test_fn_region_covers_only_the_fn() {
        let src = "#[test]\nfn t() {\n    boom();\n}\nfn live() {}\n";
        let c = ctx(src);
        assert!(c.is_test_line(3));
        assert!(!c.is_test_line(5));
    }

    #[test]
    fn cfg_any_test_feature_is_exempt_but_not_test_is_not() {
        let src = "#[cfg(any(test, feature = \"fault-injection\"))]\nfn hook() { panic!(); }\n#[cfg(not(test))]\nfn live() { run(); }\n";
        let c = ctx(src);
        assert!(c.is_test_line(2));
        assert!(!c.is_test_line(4));
    }

    #[test]
    fn inner_attributes_do_not_open_regions() {
        let src = "#![allow(dead_code)]\nfn live() {}\n";
        let c = ctx(src);
        assert!(!c.is_test_line(2));
    }

    #[test]
    fn cfg_test_on_bodiless_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}\n";
        let c = ctx(src);
        assert!(c.is_test_line(2));
        assert!(!c.is_test_line(3));
    }

    #[test]
    fn trailing_allow_targets_its_own_line() {
        let src =
            "let x = f(); // xlint::allow(no-panic-lib): builder misuse is a programming error\n";
        let c = ctx(src);
        assert_eq!(c.allows.len(), 1);
        assert_eq!(c.allows[0].rule, "no-panic-lib");
        assert_eq!(c.allows[0].target_line, 1);
        assert!(c.allows[0].reason.contains("programming error"));
    }

    #[test]
    fn standalone_allow_targets_next_code_line() {
        let src = "// xlint::allow(hot-path-hash): cold config path\n// xlint::allow(no-panic-lib): second rule stacks\nlet m = HashMap::new();\n";
        let c = ctx(src);
        assert_eq!(c.allows.len(), 2);
        assert_eq!(c.allows[0].target_line, 3);
        assert_eq!(c.allows[1].target_line, 3);
    }

    #[test]
    fn allow_without_reason_is_kept_but_empty() {
        let src = "// xlint::allow(no-panic-lib)\nlet x = f();\n";
        let c = ctx(src);
        assert_eq!(c.allows.len(), 1);
        assert!(c.allows[0].reason.is_empty());
    }

    #[test]
    fn directive_inside_string_is_ignored() {
        let src = "let s = \"xlint::allow(no-panic-lib): nope\";\n";
        let c = ctx(src);
        assert!(c.allows.is_empty());
    }
}
