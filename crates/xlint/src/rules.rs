//! The rule catalogue and the engine that applies it.
//!
//! Every rule pins an invariant the repo has already paid for:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `no-panic-lib` | library crates are panic-free by contract (PR 1) |
//! | `hot-path-hash` | the dense-table hot path stays hash-free (PR 3) |
//! | `safety-comment` | every `unsafe` block justifies itself |
//! | `forbid-unsafe-gate` | library crates forbid `unsafe_code` outright |
//! | `no-raw-spawn` | threads come from the work queue, not ad hoc |
//! | `no-unbudgeted-clock` | clock reads stay inside budget/stats code |
//!
//! Rules operate on the [`FileContext`] token stream, so comments, string
//! literals and `#[cfg(test)]` items never trip them. Suppression is per
//! line via `// xlint::allow(<rule>): <reason>`; a directive without a
//! reason is itself reported.

use crate::lexer::TokenKind;
use crate::source::{CrateKind, FileContext};

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

/// Names of all rules, for directive validation and docs.
pub const RULES: &[(&str, &str)] = &[
    (
        "no-panic-lib",
        "no unwrap/expect/panic!/todo!/unimplemented!/unreachable! in non-test library code",
    ),
    (
        "hot-path-hash",
        "no HashMap/HashSet/BTreeMap in the dense-table hot-path files",
    ),
    (
        "safety-comment",
        "every unsafe block is preceded by a // SAFETY: comment",
    ),
    (
        "forbid-unsafe-gate",
        "every library crate's lib.rs carries #![forbid(unsafe_code)]",
    ),
    (
        "no-raw-spawn",
        "std::thread::spawn confined to the sanctioned worker modules",
    ),
    (
        "no-unbudgeted-clock",
        "Instant::now() confined to budget/stats modules in library crates",
    ),
    // The semantic tier (src/semantic.rs): cross-crate rules that need the
    // workspace item model, so they run from run_workspace, not per file.
    (
        "budget-poll",
        "every loop on a mining growth path reaches a MiningBudget poll",
    ),
    (
        "lock-discipline",
        "no lock guard live across channel send/recv, thread join, or socket I/O in stream/server",
    ),
    (
        "wire-drift",
        "wire verbs and PipelineStats fields agree across parser, dispatcher, docs and stats output",
    ),
    (
        "exit-code-registry",
        "process exit codes are named constants from cli/src/exit.rs, never numeric literals",
    ),
];

/// Files on the dense-table hot path (PR 3): hash containers here undo a
/// measured ~3.6x speedup, so they are banned outright.
const HOT_PATH_FILES: &[&str] = &[
    "crates/tpminer/src/search.rs",
    "crates/tpminer/src/index.rs",
    "crates/tpminer/src/parallel.rs",
    "crates/stream/src/window.rs",
];

/// Modules allowed to call `std::thread::spawn`: the work-queue scheduler
/// and the stream publication/refresh workers. Everything else must go
/// through `ParallelTpMiner`'s queue so panic isolation and budget
/// observation stay centralized.
const SPAWN_ALLOWED: &[&str] = &[
    "crates/tpminer/src/parallel.rs",
    "crates/stream/src/snapshot.rs",
    "crates/stream/src/incremental.rs",
    // The pipelined-refresh worker (PR 5): owns the dispatcher thread;
    // its bounded channel + join-on-shutdown lifecycle is exactly the
    // reviewable surface this rule centralizes.
    "crates/stream/src/worker.rs",
    // The sharded refresh pool (PR 8): long-lived shard miners fed by
    // bounded channels and joined on drop — the dispatcher in worker.rs
    // is their only driver.
    "crates/stream/src/pool.rs",
    // The service tier's accept loop (PR 7): one thread per connection
    // plus the ServerHandle background thread, all retained and joined.
    // Other crates/server modules must NOT spawn — stream workers come
    // from `RefreshWorker::spawn`, connection threads only from here.
    "crates/server/src/accept.rs",
];

/// Library modules allowed to read the monotonic clock. Keeping every
/// other clock read out of library crates is what makes cancellation and
/// truncation deterministic under test.
const CLOCK_ALLOWED: &[&str] = &[
    "crates/interval-core/src/budget.rs",
    "crates/tpminer/src/stats.rs",
    // The WAL's retry loop bounds its exponential backoff by elapsed wall
    // time; this module is durability's one sanctioned clock home.
    "crates/durability/src/io.rs",
    // Segment sealing times each fsync-backed seal (`seal_micros` in
    // `SegmentStats`) so operators can spot slow disks; the store module
    // is the segment crate's one sanctioned clock home.
    "crates/segment/src/store.rs",
];

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

/// Runs every rule over one file.
pub fn check_file(ctx: &FileContext) -> Vec<Violation> {
    let mut raw = Vec::new();
    no_panic_lib(ctx, &mut raw);
    hot_path_hash(ctx, &mut raw);
    safety_comment(ctx, &mut raw);
    forbid_unsafe_gate(ctx, &mut raw);
    no_raw_spawn(ctx, &mut raw);
    no_unbudgeted_clock(ctx, &mut raw);
    raw
}

/// Applies allow-directives to raw violations. Returns the surviving
/// violations (malformed or unknown-rule directives are appended as
/// violations of their own) plus the number suppressed.
pub fn apply_allows(ctx: &FileContext, raw: Vec<Violation>) -> (Vec<Violation>, usize) {
    let mut used = vec![false; ctx.allows.len()];
    let mut out = Vec::new();
    let mut suppressed = 0usize;
    for v in raw {
        let allowed = ctx.allows.iter().enumerate().any(|(i, a)| {
            let hit = a.rule == v.rule && a.target_line == v.line && !a.reason.is_empty();
            if hit {
                used[i] = true;
            }
            hit
        });
        if allowed {
            suppressed += 1;
        } else {
            out.push(v);
        }
    }
    for (i, a) in ctx.allows.iter().enumerate() {
        if a.reason.is_empty() {
            out.push(Violation {
                file: ctx.path.clone(),
                line: a.directive_line,
                rule: "malformed-allow",
                message: format!(
                    "xlint::allow({}) has no reason; write `// xlint::allow({}): <why>`",
                    a.rule, a.rule
                ),
            });
        } else if !RULES.iter().any(|(name, _)| *name == a.rule) {
            out.push(Violation {
                file: ctx.path.clone(),
                line: a.directive_line,
                rule: "unknown-rule-allow",
                message: format!("xlint::allow references unknown rule `{}`", a.rule),
            });
        } else if !used[i] {
            out.push(Violation {
                file: ctx.path.clone(),
                line: a.directive_line,
                rule: "unused-allow",
                message: format!(
                    "xlint::allow({}) suppresses nothing on line {}; remove it",
                    a.rule, a.target_line
                ),
            });
        }
    }
    (out, suppressed)
}

fn violation(ctx: &FileContext, line: usize, rule: &'static str, message: String) -> Violation {
    Violation {
        file: ctx.path.clone(),
        line,
        rule,
        message,
    }
}

/// `no-panic-lib`: panicking constructs are banned from non-test library
/// code. `.unwrap()` / `.expect(` as method calls; `panic!` / `todo!` /
/// `unimplemented!` / `unreachable!` as macros. `debug_assert!` stays
/// legal — it vanishes in release builds, which is the sanctioned way to
/// pin an invariant without breaking the panic-free contract.
fn no_panic_lib(ctx: &FileContext, out: &mut Vec<Violation>) {
    if ctx.kind != CrateKind::Lib {
        return;
    }
    for (pos, &ti) in ctx.code.iter().enumerate() {
        let tok = &ctx.tokens[ti];
        if tok.kind != TokenKind::Ident || ctx.is_test_line(tok.line) {
            continue;
        }
        let text = ctx.text(ti);
        match text {
            "unwrap" | "expect" => {
                let is_method = ctx.prev_code(pos).is_some_and(|p| ctx.text(p) == ".")
                    && ctx.next_code(pos).is_some_and(|n| ctx.text(n) == "(");
                if is_method {
                    out.push(violation(
                        ctx,
                        tok.line,
                        "no-panic-lib",
                        format!(
                            ".{text}() panics on None/Err; propagate the error or use \
                             debug_assert! + infallible access (library crates are \
                             panic-free by contract)"
                        ),
                    ));
                }
            }
            _ if PANIC_MACROS.contains(&text)
                && ctx.next_code(pos).is_some_and(|n| ctx.text(n) == "!") =>
            {
                out.push(violation(
                    ctx,
                    tok.line,
                    "no-panic-lib",
                    format!("{text}! is banned in non-test library code"),
                ));
            }
            _ => {}
        }
    }
}

/// `hot-path-hash`: hash/tree containers banned in the dense-table files.
fn hot_path_hash(ctx: &FileContext, out: &mut Vec<Violation>) {
    if !HOT_PATH_FILES.contains(&ctx.path.as_str()) {
        return;
    }
    for &ti in &ctx.code {
        let tok = &ctx.tokens[ti];
        if tok.kind != TokenKind::Ident || ctx.is_test_line(tok.line) {
            continue;
        }
        let text = ctx.text(ti);
        if matches!(text, "HashMap" | "HashSet" | "BTreeMap") {
            out.push(violation(
                ctx,
                tok.line,
                "hot-path-hash",
                format!(
                    "{text} in a hot-path file; use the dense Vec/bitset tables \
                     (PR 3 measured ~3.6x from removing hashing here)"
                ),
            ));
        }
    }
}

/// `safety-comment`: each `unsafe {` block needs a `// SAFETY:` comment on
/// the same line or on the comment lines directly above it.
fn safety_comment(ctx: &FileContext, out: &mut Vec<Violation>) {
    for (pos, &ti) in ctx.code.iter().enumerate() {
        let tok = &ctx.tokens[ti];
        if tok.kind != TokenKind::Ident || ctx.text(ti) != "unsafe" || ctx.is_test_line(tok.line) {
            continue;
        }
        // Only blocks: `unsafe fn` / `unsafe impl` declare, they don't do.
        if ctx.next_code(pos).is_none_or(|n| ctx.text(n) != "{") {
            continue;
        }
        if !has_safety_comment(ctx, tok.line) {
            out.push(violation(
                ctx,
                tok.line,
                "safety-comment",
                "unsafe block without a preceding // SAFETY: comment".to_string(),
            ));
        }
    }
}

fn has_safety_comment(ctx: &FileContext, unsafe_line: usize) -> bool {
    let comment_on = |line: usize| {
        ctx.tokens.iter().any(|t| {
            matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
                && (t.line..=t.end_line(&ctx.src)).contains(&line)
                && t.text(&ctx.src).contains("SAFETY:")
        })
    };
    if comment_on(unsafe_line) {
        return true;
    }
    // Walk up over comment-only (or attribute-only) lines.
    let mut line = unsafe_line;
    while line > 1 {
        line -= 1;
        if comment_on(line) {
            return true;
        }
        if ctx.line_has_code(line) {
            // Attribute lines (e.g. `#[cfg(unix)]`) may sit between the
            // comment and the block; keep walking over those only.
            let starts_attr = ctx
                .tokens
                .iter()
                .find(|t| {
                    !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
                        && t.line == line
                })
                .is_some_and(|t| t.text(&ctx.src) == "#");
            if starts_attr {
                continue;
            }
            return false;
        }
    }
    false
}

/// `forbid-unsafe-gate`: a library crate's `lib.rs` must contain
/// `#![forbid(unsafe_code)]`.
fn forbid_unsafe_gate(ctx: &FileContext, out: &mut Vec<Violation>) {
    if ctx.kind != CrateKind::Lib || !ctx.path.ends_with("src/lib.rs") {
        return;
    }
    let toks: Vec<&str> = ctx.code.iter().map(|&i| ctx.text(i)).collect();
    let found = toks
        .windows(8)
        .any(|w| w == ["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"]);
    if !found {
        out.push(violation(
            ctx,
            1,
            "forbid-unsafe-gate",
            format!(
                "library crate `{}` must carry #![forbid(unsafe_code)] in lib.rs",
                ctx.crate_name
            ),
        ));
    }
}

/// `no-raw-spawn`: `thread::spawn` outside the sanctioned worker modules.
/// Tool crates are covered too — the CLI must route mining through the
/// work queue rather than spawning ad hoc threads.
fn no_raw_spawn(ctx: &FileContext, out: &mut Vec<Violation>) {
    if SPAWN_ALLOWED.contains(&ctx.path.as_str()) {
        return;
    }
    for (pos, &ti) in ctx.code.iter().enumerate() {
        let tok = &ctx.tokens[ti];
        if tok.kind != TokenKind::Ident || ctx.text(ti) != "spawn" || ctx.is_test_line(tok.line) {
            continue;
        }
        // Match `thread :: spawn` (std::thread::spawn included); scoped
        // `scope.spawn` and crossbeam handles don't match and are governed
        // by the work-queue design review instead.
        let is_thread_spawn = ctx
            .prev_code(pos)
            .filter(|&p| ctx.text(p) == ":")
            .and_then(|_| pos.checked_sub(3))
            .is_some_and(|p3| {
                ctx.text(ctx.code[p3]) == "thread" && ctx.text(ctx.code[p3 + 1]) == ":"
            });
        if is_thread_spawn {
            out.push(violation(
                ctx,
                tok.line,
                "no-raw-spawn",
                "raw thread::spawn outside the sanctioned worker modules; \
                 route work through the ParallelTpMiner work queue"
                    .to_string(),
            ));
        }
    }
}

/// `no-unbudgeted-clock`: `Instant::now()` in a library crate outside the
/// budget/stats modules. Free-floating clock reads make cancellation
/// timing-dependent and unreproducible; the budget owns time.
fn no_unbudgeted_clock(ctx: &FileContext, out: &mut Vec<Violation>) {
    if ctx.kind != CrateKind::Lib || CLOCK_ALLOWED.contains(&ctx.path.as_str()) {
        return;
    }
    for (pos, &ti) in ctx.code.iter().enumerate() {
        let tok = &ctx.tokens[ti];
        if tok.kind != TokenKind::Ident || ctx.text(ti) != "now" || ctx.is_test_line(tok.line) {
            continue;
        }
        let is_instant_now = pos >= 3
            && ctx.text(ctx.code[pos - 1]) == ":"
            && ctx.text(ctx.code[pos - 2]) == ":"
            && ctx.text(ctx.code[pos - 3]) == "Instant";
        if is_instant_now {
            out.push(violation(
                ctx,
                tok.line,
                "no-unbudgeted-clock",
                "Instant::now() outside budget/stats modules; clock reads in \
                 library code must flow through the mining budget"
                    .to_string(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{CrateKind, FileContext};

    fn lib_ctx(path: &str, src: &str) -> FileContext {
        FileContext::new(path.into(), "demo".into(), CrateKind::Lib, src.into())
    }

    fn run(path: &str, src: &str) -> Vec<Violation> {
        let ctx = lib_ctx(path, src);
        let (v, _) = apply_allows(&ctx, check_file(&ctx));
        v
    }

    #[test]
    fn unwrap_in_lib_code_is_flagged_but_not_in_tests_or_comments() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // x.unwrap() in a comment\n    x.unwrap()\n}\n#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n";
        let v = run("crates/demo/src/util.rs", src);
        let panics: Vec<_> = v.iter().filter(|v| v.rule == "no-panic-lib").collect();
        assert_eq!(panics.len(), 1, "{v:?}");
        assert_eq!(panics[0].line, 3);
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }\n";
        assert!(run("crates/demo/src/util.rs", src).is_empty());
    }

    #[test]
    fn panic_macros_are_flagged() {
        let src =
            "fn f() { panic!(\"boom\"); }\nfn g() { todo!() }\nfn h() { debug_assert!(true); }\n";
        let v = run("crates/demo/src/util.rs", src);
        assert_eq!(v.iter().filter(|v| v.rule == "no-panic-lib").count(), 2);
    }

    #[test]
    fn allow_with_reason_suppresses_and_is_not_unused() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // xlint::allow(no-panic-lib): corrupt index is unrecoverable by contract\n    x.unwrap()\n}\n";
        let ctx = lib_ctx("crates/demo/src/util.rs", src);
        let (v, suppressed) = apply_allows(&ctx, check_file(&ctx));
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn allow_without_reason_is_malformed_and_does_not_suppress() {
        let src =
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // xlint::allow(no-panic-lib)\n}\n";
        let v = run("crates/demo/src/util.rs", src);
        assert!(v.iter().any(|v| v.rule == "no-panic-lib"));
        assert!(v.iter().any(|v| v.rule == "malformed-allow"));
    }

    #[test]
    fn unused_allow_is_reported() {
        let src = "// xlint::allow(no-panic-lib): stale justification\nfn f() -> u32 { 1 }\n";
        let v = run("crates/demo/src/util.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unused-allow");
    }

    #[test]
    fn hash_containers_flagged_only_in_hot_path_files() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
        assert_eq!(
            run("crates/tpminer/src/search.rs", src)
                .iter()
                .filter(|v| v.rule == "hot-path-hash")
                .count(),
            3
        );
        assert!(run("crates/demo/src/other.rs", src).is_empty());
    }

    #[test]
    fn unsafe_block_requires_safety_comment() {
        let bad = "fn f() { unsafe { do_it(); } }\n";
        let good = "fn f() {\n    // SAFETY: the pointer is valid for the call.\n    unsafe { do_it(); }\n}\n";
        let attr_between = "fn f() {\n    // SAFETY: handler only does an atomic store.\n    #[cfg(unix)]\n    unsafe { do_it(); }\n}\n";
        let trailing = "fn f() { unsafe { do_it(); } } // SAFETY: trivially safe\n";
        assert_eq!(run("crates/demo/src/x.rs", bad).len(), 1);
        assert!(run("crates/demo/src/x.rs", good).is_empty());
        assert!(run("crates/demo/src/x.rs", attr_between).is_empty());
        assert!(run("crates/demo/src/x.rs", trailing).is_empty());
    }

    #[test]
    fn unsafe_fn_signature_alone_is_not_a_block() {
        // The body block inherits the fn's unsafety in 2021 edition without
        // an inner `unsafe {` — only explicit blocks are checked.
        let src = "unsafe fn f() { do_it(); }\n";
        assert!(run("crates/demo/src/x.rs", src).is_empty());
    }

    #[test]
    fn missing_forbid_gate_is_flagged_on_lib_rs_only() {
        let src = "pub fn api() {}\n";
        let v = run("crates/demo/src/lib.rs", src);
        assert_eq!(
            v.iter().filter(|v| v.rule == "forbid-unsafe-gate").count(),
            1
        );
        assert!(run("crates/demo/src/other.rs", src).is_empty());
        let gated = "#![forbid(unsafe_code)]\npub fn api() {}\n";
        assert!(run("crates/demo/src/lib.rs", gated).is_empty());
    }

    #[test]
    fn thread_spawn_flagged_outside_sanctioned_modules() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(run("crates/demo/src/x.rs", src).len(), 1);
        assert!(run("crates/tpminer/src/parallel.rs", src).is_empty());
        let scoped = "fn f(s: &Scope) { s.spawn(|| {}); }\n";
        assert!(run("crates/demo/src/x.rs", scoped).is_empty());
    }

    #[test]
    fn instant_now_flagged_outside_budget_and_stats() {
        let src = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }\n";
        assert_eq!(
            run("crates/demo/src/x.rs", src)
                .iter()
                .filter(|v| v.rule == "no-unbudgeted-clock")
                .count(),
            1
        );
        assert!(run("crates/interval-core/src/budget.rs", src).is_empty());
        assert!(run("crates/tpminer/src/stats.rs", src).is_empty());
        // Tool crates own their own clocks.
        let tool = FileContext::new(
            "crates/cli/src/main.rs".into(),
            "cli".into(),
            CrateKind::Tool,
            src.into(),
        );
        let (v, _) = apply_allows(&tool, check_file(&tool));
        assert!(v.is_empty());
    }
}
