//! End-to-end rule tests over the files in `fixtures/`.
//!
//! Each fixture carries both a violating site and a suppressed
//! (`xlint::allow` + reason) site for one rule. The fixtures are checked
//! through [`FileContext`] under a synthetic workspace path, because
//! several rules key on the file's location (hot-path list, `lib.rs`
//! gate) rather than its content alone.

use std::fs;
use std::path::Path;
use xlint::model::Model;
use xlint::rules::{apply_allows, check_file, Violation};
use xlint::semantic;
use xlint::source::{CrateKind, FileContext};

/// Lints `fixtures/<fixture>` as if it lived at `path` in a crate of the
/// given kind, returning surviving violations and the suppressed count.
fn lint(fixture: &str, path: &str, kind: CrateKind) -> (Vec<Violation>, usize) {
    let file = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(fixture);
    let src = fs::read_to_string(&file)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", file.display()));
    let ctx = FileContext::new(path.into(), "fixture".into(), kind, src);
    apply_allows(&ctx, check_file(&ctx))
}

/// Lints a set of fixtures as a miniature workspace: each fixture lands
/// at its synthetic workspace `path`, the item model is built over the
/// whole set, and both the per-file and semantic tiers run — mirroring
/// `run_workspace` — with allows applied per owning file.
fn lint_workspace(files: &[(&str, &str)], docs: Option<&str>) -> (Vec<Violation>, usize) {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let ctxs: Vec<FileContext> = files
        .iter()
        .map(|(fixture, path)| {
            let src = fs::read_to_string(dir.join(fixture))
                .unwrap_or_else(|e| panic!("fixture {fixture} unreadable: {e}"));
            let name = path
                .strip_prefix("crates/")
                .and_then(|r| r.split('/').next())
                .unwrap_or("fixture");
            let kind = if xlint::TOOL_CRATES.contains(&name) {
                CrateKind::Tool
            } else {
                CrateKind::Lib
            };
            FileContext::new((*path).into(), name.into(), kind, src)
        })
        .collect();
    let refs: Vec<&FileContext> = ctxs.iter().collect();
    let model = Model::build(&refs);
    let mut raw: Vec<Vec<Violation>> = refs.iter().map(|c| check_file(c)).collect();
    for v in semantic::check_workspace(&refs, &model, docs) {
        if let Some(i) = ctxs.iter().position(|c| c.path == v.file) {
            raw[i].push(v);
        }
    }
    let mut out = Vec::new();
    let mut suppressed = 0usize;
    for (ctx, raw) in ctxs.iter().zip(raw) {
        let (mut v, s) = apply_allows(ctx, raw);
        out.append(&mut v);
        suppressed += s;
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    (out, suppressed)
}

fn rules(violations: &[Violation]) -> Vec<&str> {
    violations.iter().map(|v| v.rule).collect()
}

#[test]
fn no_panic_lib_fixture() {
    let (v, suppressed) = lint(
        "no_panic_lib.rs",
        "crates/fixture/src/util.rs",
        CrateKind::Lib,
    );
    assert_eq!(rules(&v), ["no-panic-lib"], "{v:?}");
    assert_eq!(v[0].line, 3, "the bare unwrap, not the allowed expect");
    assert_eq!(suppressed, 1);
}

#[test]
fn no_panic_lib_fixture_is_exempt_in_tool_crates() {
    let (v, suppressed) = lint("no_panic_lib.rs", "crates/cli/src/util.rs", CrateKind::Tool);
    // The rule never fires, so the allow on the expect goes unused.
    assert_eq!(rules(&v), ["unused-allow"], "{v:?}");
    assert_eq!(suppressed, 0);
}

#[test]
fn hot_path_hash_fixture() {
    let (v, suppressed) = lint(
        "hot_path_hash.rs",
        "crates/tpminer/src/search.rs",
        CrateKind::Lib,
    );
    assert_eq!(rules(&v), ["hot-path-hash"], "{v:?}");
    assert_eq!(v[0].line, 3, "the HashMap, not the allowed HashSet");
    assert_eq!(suppressed, 1);
}

#[test]
fn hot_path_hash_fixture_is_silent_off_the_hot_path() {
    let (v, suppressed) = lint(
        "hot_path_hash.rs",
        "crates/fixture/src/other.rs",
        CrateKind::Lib,
    );
    assert_eq!(rules(&v), ["unused-allow"], "{v:?}");
    assert_eq!(suppressed, 0);
}

#[test]
fn safety_comment_fixture() {
    let (v, suppressed) = lint(
        "safety_comment.rs",
        "crates/fixture/src/ffi.rs",
        CrateKind::Lib,
    );
    assert_eq!(rules(&v), ["safety-comment"], "{v:?}");
    assert_eq!(v[0].line, 3, "the bare block; documented and allowed pass");
    assert_eq!(suppressed, 1);
}

#[test]
fn forbid_unsafe_gate_fixture() {
    let (v, suppressed) = lint(
        "forbid_unsafe_gate_violation.rs",
        "crates/fixture/src/lib.rs",
        CrateKind::Lib,
    );
    assert_eq!(rules(&v), ["forbid-unsafe-gate"], "{v:?}");
    assert_eq!(suppressed, 0);

    let (v, suppressed) = lint(
        "forbid_unsafe_gate_allow.rs",
        "crates/fixture/src/lib.rs",
        CrateKind::Lib,
    );
    assert!(v.is_empty(), "{v:?}");
    assert_eq!(suppressed, 1);

    // The same gateless file is fine anywhere but lib.rs.
    let (v, _) = lint(
        "forbid_unsafe_gate_violation.rs",
        "crates/fixture/src/util.rs",
        CrateKind::Lib,
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn no_raw_spawn_fixture() {
    let (v, suppressed) = lint(
        "no_raw_spawn.rs",
        "crates/fixture/src/work.rs",
        CrateKind::Lib,
    );
    assert_eq!(rules(&v), ["no-raw-spawn"], "{v:?}");
    assert_eq!(v[0].line, 3, "the bare spawn, not the allowed one");
    assert_eq!(suppressed, 1);

    // The sanctioned worker modules may spawn freely.
    let (v, suppressed) = lint(
        "no_raw_spawn.rs",
        "crates/tpminer/src/parallel.rs",
        CrateKind::Lib,
    );
    assert_eq!(rules(&v), ["unused-allow"], "{v:?}");
    assert_eq!(suppressed, 0);

    // The pipelined-refresh worker added in PR 5 is sanctioned too.
    let (v, suppressed) = lint(
        "no_raw_spawn.rs",
        "crates/stream/src/worker.rs",
        CrateKind::Lib,
    );
    assert_eq!(rules(&v), ["unused-allow"], "{v:?}");
    assert_eq!(suppressed, 0);

    // The sharded refresh pool (PR 8) spawns one thread per shard worker.
    let (v, suppressed) = lint(
        "no_raw_spawn.rs",
        "crates/stream/src/pool.rs",
        CrateKind::Lib,
    );
    assert_eq!(rules(&v), ["unused-allow"], "{v:?}");
    assert_eq!(suppressed, 0);

    // The server's accept loop (PR 7) is the service tier's one sanctioned
    // spawn site…
    let (v, suppressed) = lint(
        "no_raw_spawn.rs",
        "crates/server/src/accept.rs",
        CrateKind::Lib,
    );
    assert_eq!(rules(&v), ["unused-allow"], "{v:?}");
    assert_eq!(suppressed, 0);

    // …and sanctioning it must not leak to the rest of crates/server: a
    // spawn in the connection or session modules still fails.
    for module in ["crates/server/src/conn.rs", "crates/server/src/session.rs"] {
        let (v, suppressed) = lint("no_raw_spawn.rs", module, CrateKind::Lib);
        assert_eq!(rules(&v), ["no-raw-spawn"], "{module}: {v:?}");
        assert_eq!(suppressed, 1, "{module}");
    }
}

#[test]
fn no_unbudgeted_clock_fixture() {
    let (v, suppressed) = lint(
        "no_unbudgeted_clock.rs",
        "crates/fixture/src/mine.rs",
        CrateKind::Lib,
    );
    assert_eq!(rules(&v), ["no-unbudgeted-clock"], "{v:?}");
    assert_eq!(v[0].line, 5, "the bare read, not the allowed one");
    assert_eq!(suppressed, 1);

    // Budget modules own the clock.
    let (v, suppressed) = lint(
        "no_unbudgeted_clock.rs",
        "crates/interval-core/src/budget.rs",
        CrateKind::Lib,
    );
    assert_eq!(rules(&v), ["unused-allow"], "{v:?}");
    assert_eq!(suppressed, 0);
}

#[test]
fn no_unbudgeted_clock_wal_fixture() {
    // An fsync retry loop timing its backoff with `Instant::now` is still a
    // violation in any ordinary library module…
    let (v, suppressed) = lint(
        "no_unbudgeted_clock_wal.rs",
        "crates/fixture/src/journal.rs",
        CrateKind::Lib,
    );
    assert_eq!(rules(&v), ["no-unbudgeted-clock"], "{v:?}");
    assert_eq!(v[0].line, 8, "the bare read, not the allowed one");
    assert_eq!(suppressed, 1);

    // …but the durability crate's I/O module is the sanctioned home for
    // exactly this loop (retry backoff ceilings need the wall clock).
    let (v, suppressed) = lint(
        "no_unbudgeted_clock_wal.rs",
        "crates/durability/src/io.rs",
        CrateKind::Lib,
    );
    assert_eq!(rules(&v), ["unused-allow"], "{v:?}");
    assert_eq!(suppressed, 0);
}

#[test]
fn no_unbudgeted_clock_segment_fixture() {
    // Timing a seal with `Instant::now` is still a violation in any
    // ordinary library module…
    let (v, suppressed) = lint(
        "no_unbudgeted_clock_segment.rs",
        "crates/fixture/src/cold.rs",
        CrateKind::Lib,
    );
    assert_eq!(rules(&v), ["no-unbudgeted-clock"], "{v:?}");
    assert_eq!(v[0].line, 8, "the bare read, not the allowed one");
    assert_eq!(suppressed, 1);

    // …but the segment crate's store module is the sanctioned home for
    // exactly this measurement (`seal_micros` flags slow disks).
    let (v, suppressed) = lint(
        "no_unbudgeted_clock_segment.rs",
        "crates/segment/src/store.rs",
        CrateKind::Lib,
    );
    assert_eq!(rules(&v), ["unused-allow"], "{v:?}");
    assert_eq!(suppressed, 0);
}

#[test]
fn budget_poll_fixture_pair() {
    // Violating: the unpolled growth loop fires; the bookkeeping loop is
    // silent because it never reaches a growth entry point.
    let (v, suppressed) = lint_workspace(
        &[("budget_poll_violation.rs", "crates/tpminer/src/search.rs")],
        None,
    );
    assert_eq!(rules(&v), ["budget-poll"], "{v:?}");
    assert_eq!(v[0].line, 7, "the unpolled loop, not the bookkeeping one");
    assert_eq!(suppressed, 0);

    // Suppressed: the reasoned allow absorbs the violation; the metered
    // loop alongside needs no annotation at all.
    let (v, suppressed) = lint_workspace(
        &[("budget_poll_allow.rs", "crates/tpminer/src/search.rs")],
        None,
    );
    assert!(v.is_empty(), "{v:?}");
    assert_eq!(suppressed, 1);

    // Off the mining path the rule does not apply, so the allow would be
    // flagged as unused — suppressions must never outlive their rule.
    let (v, _) = lint_workspace(&[("budget_poll_allow.rs", "crates/cli/src/main.rs")], None);
    assert_eq!(rules(&v), ["unused-allow"], "{v:?}");
}

#[test]
fn lock_discipline_fixture_pair() {
    let (v, suppressed) = lint_workspace(
        &[(
            "lock_discipline_violation.rs",
            "crates/server/src/session.rs",
        )],
        None,
    );
    assert_eq!(rules(&v), ["lock-discipline"], "{v:?}");
    assert_eq!(
        v[0].line, 7,
        "the send under the guard; the frozen variant passes"
    );
    assert!(v[0].message.contains("`guard`"), "{v:?}");
    assert_eq!(suppressed, 0);

    let (v, suppressed) = lint_workspace(
        &[("lock_discipline_allow.rs", "crates/server/src/session.rs")],
        None,
    );
    assert!(v.is_empty(), "{v:?}");
    assert_eq!(suppressed, 1);

    // Outside the stream/server crates guards may block freely (the
    // mining engine has no cross-thread lock protocol), so the allow
    // comes back as unused.
    let (v, _) = lint_workspace(
        &[("lock_discipline_allow.rs", "crates/tpminer/src/helper.rs")],
        None,
    );
    assert_eq!(rules(&v), ["unused-allow"], "{v:?}");
}

#[test]
fn wire_drift_fixture_pair() {
    let docs = Some("The server speaks PING and QUERY.");
    let (v, suppressed) = lint_workspace(
        &[(
            "wire_drift_violation.rs",
            "crates/interval-core/src/wire.rs",
        )],
        docs,
    );
    assert_eq!(rules(&v), ["wire-drift"], "{v:?}");
    assert!(v[0].message.contains("Request::Rogue"), "{v:?}");
    assert_eq!(v[0].line, 10, "anchors on the rogue variant");
    assert_eq!(suppressed, 0);

    let (v, suppressed) = lint_workspace(
        &[("wire_drift_allow.rs", "crates/interval-core/src/wire.rs")],
        docs,
    );
    assert!(v.is_empty(), "{v:?}");
    assert_eq!(suppressed, 1);

    // The anchors are path-keyed: the same file anywhere else is not the
    // protocol definition, so nothing fires and the allow is unused.
    let (v, _) = lint_workspace(
        &[("wire_drift_allow.rs", "crates/interval-core/src/other.rs")],
        docs,
    );
    assert_eq!(rules(&v), ["unused-allow"], "{v:?}");
}

#[test]
fn exit_code_registry_fixture_pair() {
    // Violating: one numeric `exit(…)` and one numeric `ExitCode::from`;
    // the `exit::USAGE` call resolves against the registry stand-in and
    // passes.
    let (v, suppressed) = lint_workspace(
        &[
            ("exit_code_registry_consts.rs", "crates/cli/src/exit.rs"),
            ("exit_code_registry_violation.rs", "crates/cli/src/main.rs"),
        ],
        None,
    );
    assert_eq!(
        rules(&v),
        ["exit-code-registry", "exit-code-registry"],
        "{v:?}"
    );
    assert_eq!(
        (v[0].line, v[1].line),
        (5, 9),
        "the numeric exit and the numeric ExitCode::from"
    );
    assert_eq!(suppressed, 0);

    let (v, suppressed) = lint_workspace(
        &[
            ("exit_code_registry_consts.rs", "crates/cli/src/exit.rs"),
            ("exit_code_registry_allow.rs", "crates/cli/src/main.rs"),
        ],
        None,
    );
    assert!(v.is_empty(), "{v:?}");
    assert_eq!(suppressed, 1);

    // The registry module itself is the one sanctioned home for numbers.
    let (v, _) = lint_workspace(
        &[("exit_code_registry_consts.rs", "crates/cli/src/exit.rs")],
        None,
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn run_paths_lints_fixtures_end_to_end() {
    // Drive the public entry point over a real file on disk: the fixture
    // lands in the `xlint` (tool) crate, so only structural rules apply —
    // the spawn fixture must come back clean except for its unused allow.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = manifest
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let report = xlint::run_paths(
        root,
        &[manifest.join("fixtures").join("no_unbudgeted_clock.rs")],
    )
    .expect("fixture readable");
    assert_eq!(report.checked_files, 1);
    assert_eq!(rules(&report.violations), ["unused-allow"]);
}

#[test]
fn run_changed_analyzes_everything_but_scopes_the_report() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = manifest
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    // `HEAD` is always a valid base inside the repo; whatever the diff
    // contains, the full workspace is still analyzed (checked_files) and
    // every surviving violation must name a changed file.
    let report = xlint::run_changed(root, "HEAD").expect("git diff against HEAD");
    assert!(
        report.checked_files > 50,
        "the whole workspace is analyzed, not just the diff: {}",
        report.checked_files
    );

    // An unknown base is a clean error, not a panic or an empty report.
    let err = match xlint::run_changed(root, "xlint-no-such-ref") {
        Err(e) => e,
        Ok(r) => panic!("unknown base accepted: {} files", r.checked_files),
    };
    assert!(err.to_string().contains("git diff"), "{err}");
}
