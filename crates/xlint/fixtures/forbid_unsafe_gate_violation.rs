// Fixture for `forbid-unsafe-gate`: a lib.rs with no #![forbid(unsafe_code)].
pub fn api() {}
