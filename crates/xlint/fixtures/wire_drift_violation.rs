//! wire-drift fixture (violating): `Request::Rogue` exists in the enum
//! but has no entry in the VERBS table, so the protocol surfaces
//! disagree.

pub const VERBS: &[&str] = &["PING", "QUERY"];

pub enum Request {
    Ping,
    Query { stream: String },
    Rogue,
}

fn parse(verb: &str) -> Option<Request> {
    match verb {
        "PING" => Some(Request::Ping),
        "QUERY" => None,
        _ => None,
    }
}
