//! budget-poll fixture (suppressed): the same unpolled growth loop, but
//! carrying a reasoned allow. A real polled loop rides along to show the
//! rule's happy path needs no annotation.

impl Engine {
    fn refresh_all(&mut self) {
        // xlint::allow(budget-poll): fixture — the caller caps this loop at one pass per shard.
        loop {
            self.expand_all();
        }
    }

    fn refresh_metered(&mut self) {
        loop {
            self.meter.on_node();
            self.expand_all();
        }
    }

    fn expand_all(&mut self) {
        self.expand(0);
    }

    fn expand(&mut self, _node: u32) {}
}
