// Fixture for `no-unbudgeted-clock` in segment-store-ish code: timing a
// seal (write + fsync + rename) to report `seal_micros`. Sanctioned only
// inside `crates/segment/src/store.rs` — anywhere else the bare read fires.
use std::fs::File;
use std::time::Instant;

fn violating_seal(file: &File) -> std::io::Result<u64> {
    let started = Instant::now();
    file.sync_all()?;
    Ok(started.elapsed().as_micros() as u64)
}

fn suppressed_seal(file: &File) -> std::io::Result<u64> {
    // xlint::allow(no-unbudgeted-clock): fixture — seal latency needs the wall clock
    let started = Instant::now();
    file.sync_all()?;
    Ok(started.elapsed().as_micros() as u64)
}
