//! The registry half of the exit-code fixtures: stands in for
//! `crates/cli/src/exit.rs` so the `exit::NAME` resolution check has
//! constants to check against.

pub const SUCCESS: u8 = 0;
pub const USAGE: u8 = 2;
