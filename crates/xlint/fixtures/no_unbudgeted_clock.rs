// Fixture for `no-unbudgeted-clock`: one violation, one suppressed.
use std::time::Instant;

fn violating() {
    let _ = Instant::now();
}

fn suppressed() {
    // xlint::allow(no-unbudgeted-clock): fixture demonstrating a justified clock read
    let _ = Instant::now();
}
