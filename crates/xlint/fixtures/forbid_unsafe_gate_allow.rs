pub fn api() {} // xlint::allow(forbid-unsafe-gate): fixture crate wraps unsafe FFI and cannot forbid
