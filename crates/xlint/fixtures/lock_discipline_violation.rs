//! lock-discipline fixture (violating): a mutex guard stays live across a
//! channel send. The second function shows the sanctioned shape — freeze
//! what you need inside a block so the guard dies before the send.

fn publish(shared: &Mutex<State>, tx: &Sender<Job>) {
    let guard = shared.lock();
    tx.send(guard.next_job());
}

fn publish_frozen(shared: &Mutex<State>, tx: &Sender<Job>) {
    let job = {
        let guard = shared.lock();
        guard.next_job()
    };
    tx.send(job);
}
