// Fixture for `no-raw-spawn`: one violation, one suppressed.
fn violating() {
    std::thread::spawn(|| {});
}

fn suppressed() {
    // xlint::allow(no-raw-spawn): fixture demonstrating a justified one-shot thread
    std::thread::spawn(|| {});
}
