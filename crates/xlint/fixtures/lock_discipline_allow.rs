//! lock-discipline fixture (suppressed): the same guard-across-send
//! shape, carrying a reasoned allow on the blocking line.

fn publish(shared: &Mutex<State>, tx: &Sender<Job>) {
    let guard = shared.lock();
    // xlint::allow(lock-discipline): fixture — the channel is unbounded here; this send never parks.
    tx.send(guard.next_job());
}
