// Fixture for `hot-path-hash`: linted under a hot-path file name.
fn violating() {
    let _m: std::collections::HashMap<u32, u32> = Default::default();
}

fn suppressed() {
    // xlint::allow(hot-path-hash): fixture demonstrating a justified exception
    let _s: std::collections::HashSet<u32> = Default::default();
}
