//! budget-poll fixture (violating): the first loop drives pattern growth
//! through a helper without ever reaching a MiningBudget poll; the second
//! loop is bookkeeping only and must stay silent.

impl Engine {
    fn refresh_all(&mut self) {
        loop {
            self.expand_all();
        }
    }

    fn expand_all(&mut self) {
        self.expand(0);
    }

    fn expand(&mut self, _node: u32) {}

    fn bookkeeping(&self) {
        for _slot in 0..3 {
            self.tally();
        }
    }

    fn tally(&self) {}
}
