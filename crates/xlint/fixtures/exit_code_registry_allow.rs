//! exit-code-registry fixture (suppressed): the numeric exit carries a
//! reasoned allow.

fn fail_fast() {
    // xlint::allow(exit-code-registry): fixture — exercising the suppression path itself.
    std::process::exit(9);
}
