//! wire-drift fixture (suppressed): the rogue variant carries a reasoned
//! allow, so the drift is acknowledged rather than silent.

pub const VERBS: &[&str] = &["PING", "QUERY"];

pub enum Request {
    Ping,
    Query { stream: String },
    // xlint::allow(wire-drift): fixture — internal marker variant, never parsed off the wire.
    Rogue,
}

fn parse(verb: &str) -> Option<Request> {
    match verb {
        "PING" => Some(Request::Ping),
        "QUERY" => None,
        _ => None,
    }
}
