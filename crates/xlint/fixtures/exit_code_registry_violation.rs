//! exit-code-registry fixture (violating): numeric exits outside the
//! registry module. The named-constant call shows the sanctioned shape.

fn fail_fast() {
    std::process::exit(9);
}

fn usage() -> ExitCode {
    ExitCode::from(64)
}

fn fail_named() {
    std::process::exit(i32::from(exit::USAGE));
}
