// Fixture for `no-unbudgeted-clock` in WAL-ish code: a retry loop that
// bounds fsync backoff by wall time. Sanctioned only inside
// `crates/durability/src/io.rs` — anywhere else the bare read fires.
use std::fs::File;
use std::time::{Duration, Instant};

fn violating_retry(file: &File) -> std::io::Result<()> {
    let started = Instant::now();
    loop {
        match file.sync_all() {
            Ok(()) => return Ok(()),
            Err(e) if started.elapsed() > Duration::from_millis(250) => return Err(e),
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

fn suppressed_retry(file: &File) -> std::io::Result<()> {
    // xlint::allow(no-unbudgeted-clock): fixture — backoff ceiling needs the wall clock
    let started = Instant::now();
    let _ = started;
    file.sync_all()
}
