// Fixture for `safety-comment`: bare block, documented block, suppressed block.
fn violating() {
    unsafe { ffi() }
}

fn documented() {
    // SAFETY: ffi has no preconditions in this fixture.
    unsafe { ffi() }
}

fn suppressed() {
    // xlint::allow(safety-comment): fixture demonstrating suppression without a SAFETY note
    unsafe { ffi() }
}
