// Fixture for `no-panic-lib`: one violation, one suppressed, one test-exempt.
fn violating(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn suppressed(x: Option<u32>) -> u32 {
    // xlint::allow(no-panic-lib): fixture demonstrating a justified panic site
    x.expect("fixture")
}

#[cfg(test)]
mod tests {
    fn exempt() {
        Some(1).unwrap();
    }
}
