//! The on-disk segment file format.
//!
//! A sealed segment is immutable and self-validating:
//!
//! ```text
//! ┌──────────────┬─────────────────────────────┬──────────────┬─────────────────────────┐
//! │ magic (8 B)  │ body: framed interval       │ footer frame │ trailer (12 B)          │
//! │ "PTSEG001"   │ records, grouped by         │ [len][crc]   │ footer_frame_len: u32 LE│
//! │              │ sequence id ascending       │ [payload]    │ magic "PTSEGFTR" (8 B)  │
//! └──────────────┴─────────────────────────────┴──────────────┴─────────────────────────┘
//! ```
//!
//! Body records reuse the WAL's CRC-32 framing verbatim
//! ([`durability::frame_record`]): each is one framed
//! [`StreamEvent::Interval`], so the same slicing-by-8 checksum and the
//! same torn-tail/corruption scanner guard both the hot log and the cold
//! store. The footer is a single frame in the same `[len][crc][payload]`
//! shape whose payload indexes the body **per sequence** — `(sequence id,
//! byte offset, byte length, record count)` — so a reader can rebuild one
//! sequence's endpoint index without touching the rest of the file
//! (out-of-core spill-and-reload). The fixed-size trailer lets a reader
//! find the footer from the end of the file without scanning the body.
//!
//! A file missing its trailer, footer CRC, or header magic is *not a
//! segment*: seals write body-then-footer-then-trailer, so any crash
//! mid-seal leaves a file this module refuses to validate, and recovery
//! deletes it (the data is still WAL-replayable — the WAL is only
//! reclaimed past epochs whose segments validated; see `docs/STORAGE.md`).

use interval_core::{SequenceId, StreamEvent, Time};

use durability::crc32;
use durability::record::{scan_segment, FRAME_HEADER_LEN};

use crate::SegmentError;

/// Leading file magic: "PTSEG001" (the trailing digits version the layout).
pub const SEGMENT_MAGIC: &[u8; 8] = b"PTSEG001";
/// Trailing file magic, after the footer-length word.
pub const TRAILER_MAGIC: &[u8; 8] = b"PTSEGFTR";
/// Bytes of the fixed trailer: `footer_frame_len: u32 LE` + trailer magic.
pub const TRAILER_LEN: usize = 4 + TRAILER_MAGIC.len();
/// Footer payload version written by this crate.
pub const FOOTER_VERSION: u32 = 1;

/// Reads a little-endian `u32` from the first 4 bytes of `bytes`.
/// Callers guarantee the length; a short slice trips the slice bound.
fn u32_at(bytes: &[u8]) -> u32 {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&bytes[..4]);
    u32::from_le_bytes(buf)
}

/// Reads a little-endian `u64` from the first 8 bytes of `bytes`.
fn u64_at(bytes: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(buf)
}

/// Reads a little-endian [`Time`] from the first 8 bytes of `bytes`.
fn time_at(bytes: &[u8]) -> Time {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[..8]);
    Time::from_le_bytes(buf)
}

/// Per-sequence body index entry: where one sequence's framed interval
/// records live inside the body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqEntry {
    /// The sequence id.
    pub sequence: SequenceId,
    /// Byte offset of the sequence's first frame, relative to the start of
    /// the body (i.e. just after the leading magic).
    pub offset: u64,
    /// Byte length of the sequence's frames.
    pub len: u64,
    /// Number of interval records in the run.
    pub count: u64,
}

/// The decoded footer of one sealed segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Footer {
    /// Smallest interval start in the segment.
    pub min_start: Time,
    /// Smallest interval end in the segment (range queries filter segments
    /// by `[min_end, max_end]` against the requested `[from, to]`).
    pub min_end: Time,
    /// Largest interval end in the segment.
    pub max_end: Time,
    /// Total interval records in the body.
    pub records: u64,
    /// Per-sequence body index, ascending by sequence id.
    pub sequences: Vec<SeqEntry>,
}

impl Footer {
    /// Encodes the footer payload (everything inside the footer frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(44 + self.sequences.len() * 32);
        out.extend_from_slice(&FOOTER_VERSION.to_le_bytes());
        out.extend_from_slice(&self.min_start.to_le_bytes());
        out.extend_from_slice(&self.min_end.to_le_bytes());
        out.extend_from_slice(&self.max_end.to_le_bytes());
        out.extend_from_slice(&self.records.to_le_bytes());
        out.extend_from_slice(&(self.sequences.len() as u64).to_le_bytes());
        for entry in &self.sequences {
            out.extend_from_slice(&entry.sequence.to_le_bytes());
            out.extend_from_slice(&entry.offset.to_le_bytes());
            out.extend_from_slice(&entry.len.to_le_bytes());
            out.extend_from_slice(&entry.count.to_le_bytes());
        }
        out
    }

    /// Decodes a footer payload (CRC already checked by the frame).
    pub fn decode(bytes: &[u8]) -> Result<Footer, SegmentError> {
        let mut pos = 0usize;
        let mut take = |n: usize| -> Result<&[u8], SegmentError> {
            let slice = bytes
                .get(pos..pos + n)
                .ok_or_else(|| SegmentError::corrupt("footer payload truncated"))?;
            pos += n;
            Ok(slice)
        };
        let version = u32_at(take(4)?);
        if version != FOOTER_VERSION {
            return Err(SegmentError::corrupt(format!(
                "unsupported footer version {version}"
            )));
        }
        let min_start = time_at(take(8)?);
        let min_end = time_at(take(8)?);
        let max_end = time_at(take(8)?);
        let records = u64_at(take(8)?);
        let seq_count = u64_at(take(8)?);
        // A count that cannot fit in the payload is a corrupt length field,
        // not an allocation request.
        if seq_count > (bytes.len() as u64) / 32 + 1 {
            return Err(SegmentError::corrupt(format!(
                "footer claims {seq_count} sequences in a {}-byte payload",
                bytes.len()
            )));
        }
        let mut sequences = Vec::with_capacity(seq_count as usize);
        for _ in 0..seq_count {
            sequences.push(SeqEntry {
                sequence: u64_at(take(8)?),
                offset: u64_at(take(8)?),
                len: u64_at(take(8)?),
                count: u64_at(take(8)?),
            });
        }
        if pos != bytes.len() {
            return Err(SegmentError::corrupt("footer payload has trailing bytes"));
        }
        Ok(Footer {
            min_start,
            min_end,
            max_end,
            records,
            sequences,
        })
    }
}

/// Assembles a complete segment file image: magic, body, framed footer,
/// trailer. `body` must already be framed interval records and `footer`
/// must describe it (offsets relative to the body start).
pub fn assemble(body: &[u8], footer: &Footer) -> Vec<u8> {
    let payload = footer.encode();
    let mut out = Vec::with_capacity(SEGMENT_MAGIC.len() + body.len() + payload.len() + 32);
    out.extend_from_slice(SEGMENT_MAGIC);
    out.extend_from_slice(body);
    let frame_len = FRAME_HEADER_LEN + payload.len();
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&(frame_len as u32).to_le_bytes());
    out.extend_from_slice(TRAILER_MAGIC);
    out
}

/// A validated in-memory segment image: the decoded footer plus the byte
/// range of the body within the image.
#[derive(Debug)]
pub struct ParsedSegment<'a> {
    /// The decoded, CRC-checked footer.
    pub footer: Footer,
    /// The framed body records (between magic and footer).
    pub body: &'a [u8],
}

impl<'a> ParsedSegment<'a> {
    /// Validates `bytes` as a sealed segment: header magic, trailer magic,
    /// footer frame CRC, payload decode, and per-sequence index bounds.
    /// Everything short of re-scanning the body records — that happens per
    /// sequence, on demand, in [`ParsedSegment::sequence_records`].
    pub fn parse(bytes: &'a [u8]) -> Result<ParsedSegment<'a>, SegmentError> {
        let min_len = SEGMENT_MAGIC.len() + TRAILER_LEN;
        if bytes.len() < min_len {
            return Err(SegmentError::corrupt(format!(
                "{} bytes is too short to be a segment",
                bytes.len()
            )));
        }
        if &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
            return Err(SegmentError::corrupt("bad segment magic"));
        }
        let trailer = &bytes[bytes.len() - TRAILER_LEN..];
        if &trailer[4..] != TRAILER_MAGIC {
            return Err(SegmentError::corrupt(
                "bad trailer magic (crash mid-seal or truncation)",
            ));
        }
        let frame_len = u32_at(trailer) as usize;
        let body_end = bytes
            .len()
            .checked_sub(TRAILER_LEN + frame_len)
            .filter(|&e| e >= SEGMENT_MAGIC.len())
            .ok_or_else(|| SegmentError::corrupt("footer length exceeds file"))?;
        let frame = &bytes[body_end..bytes.len() - TRAILER_LEN];
        if frame.len() < FRAME_HEADER_LEN {
            return Err(SegmentError::corrupt("footer frame truncated"));
        }
        let payload_len = u32_at(frame) as usize;
        if FRAME_HEADER_LEN + payload_len != frame.len() {
            return Err(SegmentError::corrupt("footer frame length mismatch"));
        }
        let expected_crc = u32_at(&frame[4..8]);
        let payload = &frame[FRAME_HEADER_LEN..];
        if crc32(payload) != expected_crc {
            return Err(SegmentError::corrupt("footer CRC mismatch"));
        }
        let footer = Footer::decode(payload)?;
        let body = &bytes[SEGMENT_MAGIC.len()..body_end];
        for entry in &footer.sequences {
            let in_bounds = entry
                .offset
                .checked_add(entry.len)
                .is_some_and(|end| end <= body.len() as u64);
            if !in_bounds {
                return Err(SegmentError::corrupt(format!(
                    "sequence {} index points outside the body",
                    entry.sequence
                )));
            }
        }
        Ok(ParsedSegment { footer, body })
    }

    /// Decodes one sequence's interval records from its body run, checking
    /// every frame CRC. Returns `(symbol, start, end)` triples.
    pub fn sequence_records(
        &self,
        entry: &SeqEntry,
    ) -> Result<Vec<(String, Time, Time)>, SegmentError> {
        let run = &self.body[entry.offset as usize..(entry.offset + entry.len) as usize];
        let scan = scan_segment(run);
        if let Some(corruption) = scan.corruption {
            return Err(SegmentError::corrupt(format!(
                "sequence {} run corrupt at offset {}: {}",
                entry.sequence, corruption.offset, corruption.reason
            )));
        }
        if scan.torn_tail_bytes > 0 || scan.records.len() as u64 != entry.count {
            return Err(SegmentError::corrupt(format!(
                "sequence {} run decoded {} records, footer promised {}",
                entry.sequence,
                scan.records.len(),
                entry.count
            )));
        }
        scan.records
            .into_iter()
            .map(|event| match event {
                StreamEvent::Interval {
                    sequence,
                    symbol,
                    start,
                    end,
                } if sequence == entry.sequence => Ok((symbol, start, end)),
                other => Err(SegmentError::corrupt(format!(
                    "sequence {} run holds a foreign record {other:?}",
                    entry.sequence
                ))),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use durability::frame_record;

    fn sample_image() -> Vec<u8> {
        let mut body = Vec::new();
        let mut entries = Vec::new();
        for (seq, runs) in [
            (3u64, vec![("a", 0, 5), ("b", 2, 9)]),
            (7, vec![("a", 4, 8)]),
        ] {
            let offset = body.len() as u64;
            for (symbol, start, end) in &runs {
                frame_record(
                    &StreamEvent::Interval {
                        sequence: seq,
                        symbol: (*symbol).into(),
                        start: *start,
                        end: *end,
                    },
                    &mut body,
                );
            }
            entries.push(SeqEntry {
                sequence: seq,
                offset,
                len: body.len() as u64 - offset,
                count: runs.len() as u64,
            });
        }
        let footer = Footer {
            min_start: 0,
            min_end: 5,
            max_end: 9,
            records: 3,
            sequences: entries,
        };
        assemble(&body, &footer)
    }

    #[test]
    fn round_trips_footer_and_per_sequence_records() {
        let image = sample_image();
        let parsed = ParsedSegment::parse(&image).unwrap();
        assert_eq!(parsed.footer.records, 3);
        assert_eq!(parsed.footer.sequences.len(), 2);
        let first = parsed
            .sequence_records(&parsed.footer.sequences[0])
            .unwrap();
        assert_eq!(first, vec![("a".to_owned(), 0, 5), ("b".to_owned(), 2, 9)]);
        let second = parsed
            .sequence_records(&parsed.footer.sequences[1])
            .unwrap();
        assert_eq!(second, vec![("a".to_owned(), 4, 8)]);
    }

    #[test]
    fn truncation_anywhere_fails_validation() {
        let image = sample_image();
        for cut in [0, 4, SEGMENT_MAGIC.len(), image.len() - 1, image.len() - 6] {
            assert!(
                ParsedSegment::parse(&image[..cut]).is_err(),
                "cut at {cut} must not validate"
            );
        }
    }

    #[test]
    fn footer_bit_flip_fails_validation() {
        let mut image = sample_image();
        let at = image.len() - TRAILER_LEN - 3;
        image[at] ^= 0x10;
        let err = ParsedSegment::parse(&image).unwrap_err();
        assert!(err.to_string().contains("CRC"), "{err}");
    }

    #[test]
    fn body_bit_flip_is_caught_on_sequence_read() {
        let mut image = sample_image();
        // Flip one bit inside the first body frame's payload.
        image[SEGMENT_MAGIC.len() + FRAME_HEADER_LEN + 2] ^= 0x01;
        let parsed = ParsedSegment::parse(&image).unwrap();
        let err = parsed
            .sequence_records(&parsed.footer.sequences[0])
            .unwrap_err();
        assert!(err.to_string().contains("corrupt"), "{err}");
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut image = sample_image();
        image[0] = b'X';
        assert!(ParsedSegment::parse(&image).is_err());
    }
}
