//! The writing half of the segment store: buffering evicted intervals,
//! sealing them into immutable segment files, and the append-only manifest
//! that names the live segment set.
//!
//! # Seal protocol
//!
//! A seal is a two-step commit whose crash points are all recoverable:
//!
//! 1. assemble the full segment image in memory (body, footer, trailer),
//!    write it to `{epoch:08}.seg` and **fsync** it;
//! 2. append one checksummed line naming the segment to `MANIFEST` and
//!    **fsync** that.
//!
//! Only after both steps does the store advance its durable floor — the
//! watermark below which every captured interval is sealed on disk — which
//! is what callers feed to [`Journal::reclaim`](../../stream/durable) in
//! place of the raw eviction cutoff. A crash before step 1 completes
//! leaves a file without a valid footer: reopen deletes it and the WAL
//! (never reclaimed past the floor) replays the data. A crash between the
//! steps leaves a valid *orphan* segment: reopen re-validates its footer
//! and adopts it back into the manifest. Either way the data exists in at
//! least one durable place at every instant — the crash-point property
//! test in this module walks every byte boundary of a seal and asserts
//! exactly that.
//!
//! # Degraded operation
//!
//! A failed seal (I/O error, fsync failure, dead disk) never kills the
//! stream: the store goes *sticky degraded* like the WAL journal — it
//! stops accepting intervals (counted, not lost: the WAL keeps them,
//! because the frozen durable floor stops WAL reclaim), counts the
//! failure, and the pipeline keeps mining in memory.

use std::path::{Path, PathBuf};
use std::time::Instant;

use interval_core::{SequenceId, StreamEvent, Time};

use durability::record::FRAME_HEADER_LEN;
use durability::{crc32, frame_record, write_all_retrying, RetryPolicy, StdFs, WalFile, WalFs};

use crate::format::{assemble, Footer, ParsedSegment, SeqEntry};
use crate::SegmentError;

/// Name of the manifest file inside a segment directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Default seal threshold: buffered evicted intervals are sealed once
/// their estimated framed size reaches this many bytes.
pub const DEFAULT_SEAL_BYTES: usize = 1 << 20;

/// Tuning knobs for a [`SegmentStore`].
#[derive(Debug, Clone)]
pub struct SegmentOptions {
    /// Seal once the buffered body bytes reach this threshold.
    pub seal_bytes: usize,
    /// Retry policy for transient write errors during a seal.
    pub retry: RetryPolicy,
}

impl Default for SegmentOptions {
    fn default() -> Self {
        SegmentOptions {
            seal_bytes: DEFAULT_SEAL_BYTES,
            retry: RetryPolicy::default(),
        }
    }
}

/// Counters describing everything a store has sealed, skipped and healed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentStats {
    /// Segments sealed (file + manifest line durable).
    pub segments_sealed: u64,
    /// Interval records sealed across all segments.
    pub records_sealed: u64,
    /// Bytes written across all sealed segment files.
    pub bytes_sealed: u64,
    /// Seals that failed; the store is sticky-degraded after the first.
    pub seal_failures: u64,
    /// Intervals offered after degradation and skipped (still WAL-held).
    pub appends_skipped: u64,
    /// Valid orphan segments adopted back into the manifest on open
    /// (crash landed between the seal's two steps).
    pub segments_adopted: u64,
    /// Invalid partial segment files deleted on open (crash mid-write).
    pub partials_deleted: u64,
    /// Manifest-listed segments that failed footer validation on open —
    /// excluded from the live set, left on disk for forensics.
    pub segments_corrupt: u64,
    /// Manifest-listed segments missing from the directory.
    pub segments_missing: u64,
    /// Manifest lines dropped at open (bad checksum or torn tail).
    pub manifest_lines_dropped: u64,
    /// Total wall-clock microseconds spent inside seals.
    pub seal_micros: u64,
}

/// One live sealed segment, as tracked by the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// File name within the segment directory (`{epoch:08}.seg`).
    pub file: String,
    /// The epoch number encoded in the file name.
    pub epoch: u64,
    /// Interval records in the segment.
    pub records: u64,
    /// Smallest interval start.
    pub min_start: Time,
    /// Smallest interval end.
    pub min_end: Time,
    /// Largest interval end.
    pub max_end: Time,
}

impl SegmentMeta {
    /// Renders this segment's manifest line (including its checksum).
    pub fn manifest_line(&self) -> String {
        let prefix = format!(
            "{} {} {} {} {}",
            self.file, self.records, self.min_start, self.min_end, self.max_end
        );
        let crc = crc32(prefix.as_bytes());
        format!("{prefix} {crc}\n")
    }

    /// Parses one manifest line, verifying its checksum.
    pub fn parse_manifest_line(line: &str) -> Option<SegmentMeta> {
        let fields: Vec<&str> = line.split_whitespace().collect();
        let [file, records, min_start, min_end, max_end, crc] = fields.as_slice() else {
            return None;
        };
        let prefix = format!("{file} {records} {min_start} {min_end} {max_end}");
        if crc.parse::<u32>().ok()? != crc32(prefix.as_bytes()) {
            return None;
        }
        Some(SegmentMeta {
            file: (*file).to_owned(),
            epoch: epoch_of(file)?,
            records: records.parse().ok()?,
            min_start: min_start.parse().ok()?,
            min_end: min_end.parse().ok()?,
            max_end: max_end.parse().ok()?,
        })
    }
}

/// The epoch encoded in a `{epoch:08}.seg` file name, if it is one.
pub fn epoch_of(file: &str) -> Option<u64> {
    file.strip_suffix(".seg")?.parse().ok()
}

/// Parses manifest bytes: entries up to the first bad line. A bad *final*
/// line is the torn-tail shape of a crash mid-append and is silently
/// truncated; bad lines with valid lines after them count as dropped too —
/// the store trusts only the clean prefix, exactly like WAL replay.
pub fn parse_manifest(bytes: &[u8]) -> (Vec<SegmentMeta>, u64) {
    let text = String::from_utf8_lossy(bytes);
    let mut entries = Vec::new();
    let mut dropped = 0u64;
    let mut stopped = false;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        if stopped {
            dropped += 1;
            continue;
        }
        match SegmentMeta::parse_manifest_line(line) {
            Some(meta) => entries.push(meta),
            None => {
                dropped += 1;
                stopped = true;
            }
        }
    }
    (entries, dropped)
}

/// One buffered evicted interval awaiting its seal.
#[derive(Debug, Clone)]
struct Pending {
    sequence: SequenceId,
    symbol: String,
    start: Time,
    end: Time,
}

/// The segment store writer: buffers intervals evicted from the sliding
/// window and seals them into immutable segment files (see the module
/// docs for the protocol and `docs/STORAGE.md` for the file format).
#[derive(Debug)]
pub struct SegmentStore<F: WalFs = StdFs> {
    fs: F,
    dir: PathBuf,
    options: SegmentOptions,
    pending: Vec<Pending>,
    /// Estimated framed size of `pending` (drives the seal trigger only;
    /// exact sizes are counted at seal time).
    pending_bytes: usize,
    next_epoch: u64,
    segments: Vec<SegmentMeta>,
    /// Watermark below which every captured interval is sealed durable.
    durable_floor: Option<Time>,
    degraded: Option<String>,
    stats: SegmentStats,
}

impl SegmentStore<StdFs> {
    /// Opens (or creates) a segment store on the real filesystem.
    pub fn open(dir: impl Into<PathBuf>, options: SegmentOptions) -> Result<Self, SegmentError> {
        Self::open_with(StdFs, dir, options)
    }
}

impl<F: WalFs> SegmentStore<F> {
    /// Opens (or creates) a segment store over an explicit filesystem —
    /// fault-injection tests pass `durability::FaultyFs` here.
    ///
    /// Opening *recovers*: partial segment files (no valid footer — a
    /// crash mid-seal) are deleted, valid segments missing from the
    /// manifest (a crash between seal steps) are adopted back, and
    /// manifest lines past the first bad checksum are dropped.
    pub fn open_with(
        fs: F,
        dir: impl Into<PathBuf>,
        options: SegmentOptions,
    ) -> Result<Self, SegmentError> {
        let dir = dir.into();
        fs.create_dir_all(&dir)?;
        let mut stats = SegmentStats::default();

        let manifest_bytes = match fs.read(&dir.join(MANIFEST_FILE)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let (listed, dropped) = parse_manifest(&manifest_bytes);
        stats.manifest_lines_dropped = dropped;

        let mut on_disk: Vec<String> = Vec::new();
        for path in fs.list(&dir)? {
            if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                if epoch_of(name).is_some() {
                    on_disk.push(name.to_owned());
                }
            }
        }
        on_disk.sort();

        let listed_files: Vec<String> = listed.iter().map(|m| m.file.clone()).collect();
        let mut segments: Vec<SegmentMeta> = Vec::new();
        for meta in listed {
            if !on_disk.contains(&meta.file) {
                stats.segments_missing += 1;
                continue;
            }
            match validate_file(&fs, &dir, &meta.file) {
                Ok(_) => segments.push(meta),
                Err(_) => stats.segments_corrupt += 1,
            }
        }
        // Orphans: on disk with a valid footer but not in the manifest —
        // the signature of a crash after step 1 of a seal. Adopt them.
        // Files that fail validation are partial writes; delete them (the
        // WAL still holds their data). Manifest-listed files are never
        // orphans: a listed-but-corrupt segment is excluded above and kept
        // on disk for forensics.
        let mut adopted: Vec<SegmentMeta> = Vec::new();
        for file in &on_disk {
            if listed_files.contains(file) || segments.iter().any(|m| &m.file == file) {
                continue;
            }
            match validate_file(&fs, &dir, file) {
                Ok(footer) => {
                    adopted.push(SegmentMeta {
                        file: file.clone(),
                        epoch: epoch_of(file).unwrap_or(0),
                        records: footer.records,
                        min_start: footer.min_start,
                        min_end: footer.min_end,
                        max_end: footer.max_end,
                    });
                }
                Err(_) => {
                    fs.remove_file(&dir.join(file))?;
                    stats.partials_deleted += 1;
                }
            }
        }
        if !adopted.is_empty() {
            let mut retries = 0u64;
            let mut manifest = fs.open_append(&dir.join(MANIFEST_FILE))?;
            for meta in &adopted {
                write_all_retrying(
                    &mut manifest,
                    meta.manifest_line().as_bytes(),
                    &options.retry,
                    &mut retries,
                )?;
            }
            manifest.sync()?;
            stats.segments_adopted = adopted.len() as u64;
            segments.extend(adopted);
        }
        segments.sort_by_key(|m| m.epoch);
        let next_epoch = segments.iter().map(|m| m.epoch + 1).max().unwrap_or(0);

        Ok(SegmentStore {
            fs,
            dir,
            options,
            pending: Vec::new(),
            pending_bytes: 0,
            next_epoch,
            segments,
            durable_floor: None,
            degraded: None,
            stats,
        })
    }

    /// The segment directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The live sealed segments, ascending by epoch.
    pub fn segments(&self) -> &[SegmentMeta] {
        &self.segments
    }

    /// Seal and recovery counters.
    pub fn stats(&self) -> &SegmentStats {
        &self.stats
    }

    /// Whether a failed seal has stuck the store in degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }

    /// Why the store degraded, if it did.
    pub fn degraded_reason(&self) -> Option<&str> {
        self.degraded.as_deref()
    }

    /// Intervals buffered but not yet sealed.
    pub fn pending_records(&self) -> usize {
        self.pending.len()
    }

    /// The watermark below which every interval handed to this store is
    /// sealed and fsynced, if any seal has completed.
    pub fn sealed_through(&self) -> Option<Time> {
        self.durable_floor
    }

    /// Buffers one completed interval evicted from (or dropped late by)
    /// the window. Returns `false` when the store is degraded and the
    /// interval was skipped (the WAL still holds it — the frozen durable
    /// floor stops reclaim).
    pub fn append(&mut self, sequence: SequenceId, symbol: &str, start: Time, end: Time) -> bool {
        if self.degraded.is_some() {
            self.stats.appends_skipped += 1;
            return false;
        }
        // Frame header + event tag + sequence + symbol-length prefix +
        // symbol + two times: close enough for a seal trigger.
        self.pending_bytes += FRAME_HEADER_LEN + 29 + symbol.len();
        self.pending.push(Pending {
            sequence,
            symbol: symbol.to_owned(),
            start,
            end,
        });
        true
    }

    /// Seals the buffered intervals if they crossed the size threshold.
    /// Returns whether a seal ran (successfully or not).
    pub fn maybe_seal(&mut self) -> bool {
        if self.pending.is_empty() || self.pending_bytes < self.options.seal_bytes {
            return false;
        }
        self.seal();
        true
    }

    /// Seals every buffered interval now (e.g. at shutdown), regardless of
    /// the size threshold. Returns `false` when the seal failed and the
    /// store degraded.
    pub fn seal(&mut self) -> bool {
        if self.pending.is_empty() || self.degraded.is_some() {
            return self.degraded.is_none();
        }
        let started = Instant::now();
        let result = self.try_seal();
        self.stats.seal_micros += started.elapsed().as_micros() as u64;
        match result {
            Ok(()) => true,
            Err(e) => {
                // Sticky degradation: drop the buffer (the WAL keeps the
                // data because the durable floor stops advancing), stop
                // accepting, keep mining.
                self.stats.seal_failures += 1;
                self.degraded = Some(e.to_string());
                self.pending.clear();
                self.pending_bytes = 0;
                false
            }
        }
    }

    /// The WAL reclaim watermark implied by this store's durable state:
    /// never past an interval that is still only in the WAL. Healthy with
    /// nothing buffered → the caller's eviction `cutoff` unchanged;
    /// buffered intervals hold it back to their earliest end; degraded →
    /// frozen at the last durable floor.
    pub fn reclaim_bound(&mut self, cutoff: Time) -> Time {
        if self.degraded.is_some() {
            return self.durable_floor.unwrap_or(Time::MIN);
        }
        let bound = self
            .pending
            .iter()
            .map(|p| p.end)
            .min()
            .map_or(cutoff, |min_end| min_end.min(cutoff));
        // Remember the high-water mark so a later failed seal freezes the
        // floor here rather than at MIN.
        self.durable_floor = Some(self.durable_floor.map_or(bound, |f| f.max(bound)));
        bound
    }

    fn try_seal(&mut self) -> Result<(), SegmentError> {
        // Deterministic layout: group by sequence id ascending, intervals
        // sorted by (start, end, symbol) within each run — independent of
        // eviction order, so a re-run or a restarted stream seals
        // byte-identical segments from the same events.
        self.pending.sort_by(|a, b| {
            (a.sequence, a.start, a.end, a.symbol.as_str()).cmp(&(
                b.sequence,
                b.start,
                b.end,
                b.symbol.as_str(),
            ))
        });
        let mut body = Vec::with_capacity(self.pending_bytes);
        let mut entries: Vec<SeqEntry> = Vec::new();
        let mut min_start = Time::MAX;
        let mut min_end = Time::MAX;
        let mut max_end = Time::MIN;
        for p in &self.pending {
            let offset = body.len() as u64;
            frame_record(
                &StreamEvent::Interval {
                    sequence: p.sequence,
                    symbol: p.symbol.clone(),
                    start: p.start,
                    end: p.end,
                },
                &mut body,
            );
            min_start = min_start.min(p.start);
            min_end = min_end.min(p.end);
            max_end = max_end.max(p.end);
            match entries.last_mut() {
                Some(entry) if entry.sequence == p.sequence => {
                    entry.len = body.len() as u64 - entry.offset;
                    entry.count += 1;
                }
                _ => entries.push(SeqEntry {
                    sequence: p.sequence,
                    offset,
                    len: body.len() as u64 - offset,
                    count: 1,
                }),
            }
        }
        let records = self.pending.len() as u64;
        let footer = Footer {
            min_start,
            min_end,
            max_end,
            records,
            sequences: entries,
        };
        let image = assemble(&body, &footer);
        let file = format!("{:08}.seg", self.next_epoch);
        let meta = SegmentMeta {
            file: file.clone(),
            epoch: self.next_epoch,
            records,
            min_start,
            min_end,
            max_end,
        };

        // Step 1: the segment file, fully written and fsynced.
        let mut retries = 0u64;
        let mut seg = self.fs.open_append(&self.dir.join(&file))?;
        write_all_retrying(&mut seg, &image, &self.options.retry, &mut retries)?;
        seg.sync()?;
        // Step 2: the manifest line, appended and fsynced. A crash between
        // the steps leaves a valid orphan that reopen adopts.
        let mut manifest = self.fs.open_append(&self.dir.join(MANIFEST_FILE))?;
        write_all_retrying(
            &mut manifest,
            meta.manifest_line().as_bytes(),
            &self.options.retry,
            &mut retries,
        )?;
        manifest.sync()?;

        self.stats.segments_sealed += 1;
        self.stats.records_sealed += records;
        self.stats.bytes_sealed += image.len() as u64;
        self.next_epoch += 1;
        self.segments.push(meta);
        self.pending.clear();
        self.pending_bytes = 0;
        Ok(())
    }
}

/// Reads and validates one segment file's footer.
fn validate_file<F: WalFs>(fs: &F, dir: &Path, file: &str) -> Result<Footer, SegmentError> {
    let bytes = fs.read(&dir.join(file))?;
    Ok(ParsedSegment::parse(&bytes)?.footer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use durability::{FaultPlan, FaultyFs};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "segment-store-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tiny_options() -> SegmentOptions {
        SegmentOptions {
            seal_bytes: 1, // every maybe_seal fires
            retry: RetryPolicy::none(),
        }
    }

    fn fill(store: &mut SegmentStore<impl WalFs>, n: u64) {
        for i in 0..n {
            store.append(i % 3, "sym", i as Time, i as Time + 5);
        }
    }

    #[test]
    fn seal_then_reopen_round_trips_the_manifest() {
        let dir = temp_dir("roundtrip");
        let mut store = SegmentStore::open(&dir, tiny_options()).unwrap();
        fill(&mut store, 10);
        assert!(store.seal());
        fill(&mut store, 4);
        assert!(store.seal());
        assert_eq!(store.segments().len(), 2);
        assert_eq!(store.stats().records_sealed, 14);

        let reopened = SegmentStore::open(&dir, tiny_options()).unwrap();
        assert_eq!(reopened.segments(), store.segments());
        assert_eq!(reopened.stats().segments_adopted, 0);
        assert_eq!(reopened.stats().partials_deleted, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orphan_segment_is_adopted_on_reopen() {
        let dir = temp_dir("orphan");
        let mut store = SegmentStore::open(&dir, tiny_options()).unwrap();
        fill(&mut store, 6);
        assert!(store.seal());
        // Simulate a crash between seal steps: the manifest vanishes but
        // the sealed file (valid footer) survives.
        std::fs::remove_file(dir.join(MANIFEST_FILE)).unwrap();
        let reopened = SegmentStore::open(&dir, tiny_options()).unwrap();
        assert_eq!(reopened.stats().segments_adopted, 1);
        assert_eq!(reopened.segments().len(), 1);
        assert_eq!(reopened.segments()[0].records, 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_segment_is_deleted_on_reopen() {
        let dir = temp_dir("partial");
        // A torn write: half a segment with no valid trailer.
        std::fs::write(dir.join("00000000.seg"), b"PTSEG001torn-mid-write").unwrap();
        let store = SegmentStore::open(&dir, tiny_options()).unwrap();
        assert_eq!(store.stats().partials_deleted, 1);
        assert!(store.segments().is_empty());
        assert!(!dir.join("00000000.seg").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_listed_segment_is_excluded_not_deleted() {
        let dir = temp_dir("corrupt");
        let mut store = SegmentStore::open(&dir, tiny_options()).unwrap();
        fill(&mut store, 6);
        assert!(store.seal());
        let file = dir.join(&store.segments()[0].file);
        // Flip a byte in the footer region.
        let mut bytes = std::fs::read(&file).unwrap();
        let at = bytes.len() - 20;
        bytes[at] ^= 0xFF;
        std::fs::write(&file, &bytes).unwrap();
        let reopened = SegmentStore::open(&dir, tiny_options()).unwrap();
        assert_eq!(reopened.stats().segments_corrupt, 1);
        assert!(reopened.segments().is_empty());
        assert!(file.exists(), "corrupt segments are kept for forensics");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_manifest_tail_is_truncated_silently() {
        let dir = temp_dir("torn-manifest");
        let mut store = SegmentStore::open(&dir, tiny_options()).unwrap();
        fill(&mut store, 6);
        assert!(store.seal());
        // Append half a line, as a crash mid-manifest-append would.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join(MANIFEST_FILE))
            .unwrap();
        f.write_all(b"00000001.seg 3 0").unwrap();
        drop(f);
        let reopened = SegmentStore::open(&dir, tiny_options()).unwrap();
        assert_eq!(reopened.stats().manifest_lines_dropped, 1);
        assert_eq!(reopened.segments().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_seal_degrades_and_freezes_the_reclaim_bound() {
        let dir = temp_dir("degrade");
        let fs = FaultyFs::new(FaultPlan {
            fail_syncs: u32::MAX,
            ..FaultPlan::default()
        });
        let mut store = SegmentStore::open_with(fs, &dir, tiny_options()).unwrap();
        store.append(1, "a", 0, 10);
        assert_eq!(store.reclaim_bound(50), 10, "pending holds the bound");
        assert!(!store.seal(), "fsync failure fails the seal");
        assert!(store.is_degraded());
        assert_eq!(store.stats().seal_failures, 1);
        // Frozen: later cutoffs cannot advance reclaim past the floor.
        assert_eq!(store.reclaim_bound(1_000), 10);
        assert!(!store.append(2, "b", 20, 30), "degraded store skips");
        assert_eq!(store.stats().appends_skipped, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reclaim_bound_tracks_cutoff_when_everything_is_sealed() {
        let dir = temp_dir("bound");
        let mut store = SegmentStore::open(&dir, tiny_options()).unwrap();
        assert_eq!(store.reclaim_bound(40), 40, "empty store: cutoff passes");
        store.append(1, "a", 0, 10);
        assert_eq!(store.reclaim_bound(40), 10);
        assert!(store.seal());
        assert_eq!(store.reclaim_bound(40), 40);
        assert_eq!(store.sealed_through(), Some(40));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_mid_seal_leaves_wal_replayable_state_or_a_valid_segment() {
        // The crash-point walk behind the seal protocol's invariant: for
        // every byte boundary at which the disk can die during a seal,
        // reopening must find either (a) no live segment (partial deleted
        // — the WAL, never reclaimed past the floor, still has the data)
        // or (b) exactly the sealed segment with all records — never a
        // half-segment, never both states at once.
        let probe_dir = temp_dir("probe");
        let mut probe = SegmentStore::open(&probe_dir, tiny_options()).unwrap();
        fill(&mut probe, 8);
        assert!(probe.seal());
        let full_image_len = std::fs::metadata(probe_dir.join("00000000.seg"))
            .unwrap()
            .len();
        let manifest_len = std::fs::metadata(probe_dir.join(MANIFEST_FILE))
            .unwrap()
            .len();
        std::fs::remove_dir_all(&probe_dir).ok();
        let total = full_image_len + manifest_len;

        for cliff in 0..=total {
            let dir = temp_dir(&format!("crash-{cliff}"));
            let fs = FaultyFs::new(FaultPlan {
                crash_after_bytes: Some(cliff),
                ..FaultPlan::default()
            });
            let mut store = SegmentStore::open_with(fs, &dir, tiny_options()).unwrap();
            fill(&mut store, 8);
            let sealed = store.seal();
            let floor_frozen = store.reclaim_bound(1_000);
            if !sealed {
                assert!(
                    floor_frozen <= 7 + 5,
                    "failed seal must not release the WAL past the earliest pending end"
                );
            }
            drop(store);

            let reopened = SegmentStore::open(&dir, SegmentOptions::default()).unwrap();
            match reopened.segments() {
                [] => {
                    // WAL-replayable state: nothing half-sealed survived.
                    assert!(!sealed, "a successful seal cannot vanish");
                }
                [meta] => {
                    // A surviving segment is always the complete one —
                    // whether the seal finished, the crash left a valid
                    // orphan that reopen adopted, or the crash ate only
                    // the manifest line's trailing newline (the line's
                    // checksum covers everything before it, so the entry
                    // still parses). Never a half-segment.
                    assert_eq!(meta.records, 8, "a surviving segment is complete");
                }
                more => panic!("one seal produced {} segments", more.len()),
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
