//! The reading half of the segment store: rebuilding minable per-sequence
//! endpoint indexes from cold segments on demand.
//!
//! [`SegmentReader`] opens a segment directory **read-only** — it never
//! adopts orphans, deletes partials, or appends to the manifest — so it is
//! safe to run concurrently with a live writer (the server's `HISTORY`
//! verb opens a reader without touching any ingest lock). It trusts the
//! manifest's clean prefix plus any orphan file whose footer validates,
//! which is exactly the set a crash-recovering [`SegmentStore`] would
//! adopt.
//!
//! [`SegmentReader::load_range`] assembles, for a closed time range
//! `[from, to]`, the same inputs a live refresh gets from
//! [`SlidingWindowDatabase::freeze`]: a symbol table and one
//! [`SeqIndex`] per sequence. Segments are visited one at a time and only
//! the sequence runs that can intersect the range are decoded, so memory
//! is bounded by one segment image plus the filtered result — windows far
//! larger than RAM mine by spill-and-reload. The caller wraps the load in
//! a `stream::FrozenView` (via `FrozenView::from_parts`) and hands it to
//! the unchanged `IncrementalMiner` under a `MiningBudget`.
//!
//! Range semantics match window eviction: an interval belongs to
//! `[from, to]` exactly when `from <= end <= to` — the same
//! "evict when `end < cutoff`" rule the live window applies, so a
//! historical mine reproduces what a window covering that span held.
//!
//! [`SegmentStore`]: crate::SegmentStore
//! [`SlidingWindowDatabase::freeze`]: ../../stream/window/struct.SlidingWindowDatabase.html

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use interval_core::{EventInterval, IntervalSequence, SequenceId, SymbolTable, Time};
use tpminer::SeqIndex;

use durability::{StdFs, WalFs};

use crate::format::ParsedSegment;
use crate::store::{epoch_of, parse_manifest, SegmentMeta, MANIFEST_FILE};
use crate::SegmentError;

/// Everything a historical mine needs, rebuilt from cold segments: the
/// out-of-core analogue of a frozen window view.
#[derive(Debug)]
pub struct RangeLoad {
    /// Symbol table interning every symbol in the loaded range, in
    /// deterministic (sequence id, start, end, symbol) order.
    pub symbols: SymbolTable,
    /// One endpoint index per sequence with at least one interval in the
    /// range, ascending by sequence id.
    pub seq_indexes: Vec<Arc<SeqIndex>>,
    /// Number of loaded sequences (`seq_indexes.len()`).
    pub sequences: usize,
    /// Interval records that fell inside the range.
    pub intervals: u64,
    /// Segment files whose metadata intersected the range and were read.
    pub segments_read: usize,
    /// Segment files skipped entirely by their manifest time bounds.
    pub segments_skipped: usize,
}

/// A read-only view over a segment directory (see the module docs).
#[derive(Debug)]
pub struct SegmentReader<F: WalFs = StdFs> {
    fs: F,
    dir: PathBuf,
    segments: Vec<SegmentMeta>,
}

impl SegmentReader<StdFs> {
    /// Opens a reader on the real filesystem.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, SegmentError> {
        Self::open_with(StdFs, dir)
    }
}

impl<F: WalFs> SegmentReader<F> {
    /// Opens a reader over an explicit filesystem. The directory must
    /// exist; an empty one (no manifest, no segments) is a valid empty
    /// store.
    pub fn open_with(fs: F, dir: impl Into<PathBuf>) -> Result<Self, SegmentError> {
        let dir = dir.into();
        let manifest_bytes = match fs.read(&dir.join(MANIFEST_FILE)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let (mut segments, _) = parse_manifest(&manifest_bytes);
        // Include valid orphans (sealed file durable, manifest line lost):
        // a writer crash must not hide sealed data from history queries.
        for path in fs.list(&dir)? {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(epoch) = epoch_of(name) else {
                continue;
            };
            if segments.iter().any(|m| m.file == name) {
                continue;
            }
            let Ok(bytes) = fs.read(&path) else { continue };
            if let Ok(parsed) = ParsedSegment::parse(&bytes) {
                segments.push(SegmentMeta {
                    file: name.to_owned(),
                    epoch,
                    records: parsed.footer.records,
                    min_start: parsed.footer.min_start,
                    min_end: parsed.footer.min_end,
                    max_end: parsed.footer.max_end,
                });
            }
        }
        segments.sort_by_key(|m| m.epoch);
        Ok(SegmentReader { fs, dir, segments })
    }

    /// The segment directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The readable segments, ascending by epoch.
    pub fn segments(&self) -> &[SegmentMeta] {
        &self.segments
    }

    /// Total interval records across all readable segments.
    pub fn records(&self) -> u64 {
        self.segments.iter().map(|m| m.records).sum()
    }

    /// Rebuilds the minable state of the closed range `[from, to]`
    /// (intervals with `from <= end <= to`) from the sealed segments.
    ///
    /// Corruption inside a segment body surfaces as an error naming the
    /// segment — the caller decides whether a partial answer is
    /// acceptable; this loader never silently drops records.
    pub fn load_range(&self, from: Time, to: Time) -> Result<RangeLoad, SegmentError> {
        let mut by_sequence: BTreeMap<SequenceId, Vec<(String, Time, Time)>> = BTreeMap::new();
        let mut intervals = 0u64;
        let mut segments_read = 0usize;
        let mut segments_skipped = 0usize;
        for meta in &self.segments {
            // The footer's end-time bounds decide intersection: a segment
            // with every end below `from` or above `to` has nothing for us.
            if meta.max_end < from || meta.min_end > to {
                segments_skipped += 1;
                continue;
            }
            segments_read += 1;
            let bytes = self.fs.read(&self.dir.join(&meta.file))?;
            let parsed = ParsedSegment::parse(&bytes)
                .map_err(|e| SegmentError::corrupt(format!("{}: {e}", meta.file)))?;
            for entry in &parsed.footer.sequences {
                let records = parsed
                    .sequence_records(entry)
                    .map_err(|e| SegmentError::corrupt(format!("{}: {e}", meta.file)))?;
                for (symbol, start, end) in records {
                    if end < from || end > to {
                        continue;
                    }
                    intervals += 1;
                    by_sequence
                        .entry(entry.sequence)
                        .or_default()
                        .push((symbol, start, end));
                }
            }
        }

        // Deterministic rebuild: sequences ascend by id; within one,
        // intervals sort by (start, end, symbol) and symbols intern in
        // that order — independent of seal or capture order.
        let mut symbols = SymbolTable::new();
        let mut seq_indexes = Vec::with_capacity(by_sequence.len());
        for (_, mut list) in by_sequence {
            list.sort();
            let intervals: Vec<EventInterval> = list
                .into_iter()
                .map(|(symbol, start, end)| {
                    EventInterval::new_unchecked(symbols.intern(&symbol), start, end)
                })
                .collect();
            seq_indexes.push(Arc::new(SeqIndex::from_sequence(
                &IntervalSequence::from_intervals(intervals),
            )));
        }
        Ok(RangeLoad {
            sequences: seq_indexes.len(),
            seq_indexes,
            symbols,
            intervals,
            segments_read,
            segments_skipped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{SegmentOptions, SegmentStore};
    use durability::RetryPolicy;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "segment-reader-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn store_with(dir: &Path, batches: &[&[(SequenceId, &str, Time, Time)]]) {
        let mut store = SegmentStore::open(
            dir,
            SegmentOptions {
                seal_bytes: 1,
                retry: RetryPolicy::none(),
            },
        )
        .unwrap();
        for batch in batches {
            for &(seq, sym, start, end) in *batch {
                store.append(seq, sym, start, end);
            }
            assert!(store.seal());
        }
    }

    #[test]
    fn load_range_filters_by_interval_end() {
        let dir = temp_dir("filter");
        store_with(
            &dir,
            &[
                &[(1, "a", 0, 5), (1, "b", 3, 9), (2, "a", 1, 4)],
                &[(1, "c", 10, 20), (3, "a", 12, 18)],
            ],
        );
        let reader = SegmentReader::open(&dir).unwrap();
        assert_eq!(reader.segments().len(), 2);
        assert_eq!(reader.records(), 5);

        let load = reader.load_range(5, 18).unwrap();
        // Ends in [5, 18]: (1,a,0,5), (1,b,3,9), (3,a,12,18).
        assert_eq!(load.intervals, 3);
        assert_eq!(load.sequences, 2, "sequence 2's only end (4) is outside");
        assert_eq!(load.segments_read, 2);

        let narrow = reader.load_range(0, 4).unwrap();
        assert_eq!(narrow.intervals, 1, "only (2,a,1,4)");
        assert_eq!(narrow.segments_read, 1, "second segment skipped by min_end");
        assert_eq!(narrow.segments_skipped, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_directory_is_an_empty_store() {
        let dir = temp_dir("empty");
        let reader = SegmentReader::open(&dir).unwrap();
        assert!(reader.segments().is_empty());
        let load = reader.load_range(0, 100).unwrap();
        assert_eq!(load.sequences, 0);
        assert_eq!(load.intervals, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn orphan_segments_are_readable() {
        let dir = temp_dir("orphan");
        store_with(&dir, &[&[(1, "a", 0, 5)]]);
        std::fs::remove_file(dir.join(MANIFEST_FILE)).unwrap();
        let reader = SegmentReader::open(&dir).unwrap();
        assert_eq!(reader.segments().len(), 1);
        assert_eq!(reader.load_range(0, 10).unwrap().intervals, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_body_surfaces_as_an_error_naming_the_segment() {
        let dir = temp_dir("corrupt");
        store_with(&dir, &[&[(1, "alpha", 0, 5), (1, "beta", 2, 9)]]);
        let reader = SegmentReader::open(&dir).unwrap();
        let file = dir.join(&reader.segments()[0].file);
        let mut bytes = std::fs::read(&file).unwrap();
        // Flip a bit inside the first body frame's payload. The footer
        // still validates; the per-sequence scan must catch it.
        bytes[8 + 8 + 2] ^= 0x01;
        std::fs::write(&file, &bytes).unwrap();
        let err = SegmentReader::open(&dir)
            .unwrap()
            .load_range(0, 100)
            .unwrap_err();
        assert!(err.to_string().contains(".seg"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rebuild_is_deterministic_across_capture_orders() {
        let dir_a = temp_dir("order-a");
        let dir_b = temp_dir("order-b");
        store_with(&dir_a, &[&[(2, "y", 4, 9), (1, "x", 0, 5), (1, "y", 2, 7)]]);
        store_with(&dir_b, &[&[(1, "y", 2, 7), (2, "y", 4, 9), (1, "x", 0, 5)]]);
        let load_a = SegmentReader::open(&dir_a)
            .unwrap()
            .load_range(0, 10)
            .unwrap();
        let load_b = SegmentReader::open(&dir_b)
            .unwrap()
            .load_range(0, 10)
            .unwrap();
        let names_a: Vec<&str> = load_a.symbols.iter().map(|(_, n)| n).collect();
        let names_b: Vec<&str> = load_b.symbols.iter().map(|(_, n)| n).collect();
        assert_eq!(names_a, names_b, "symbol interning order is canonical");
        assert_eq!(load_a.intervals, load_b.intervals);
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }
}
