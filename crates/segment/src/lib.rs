//! Persistent, time-partitioned segment storage for evicted stream epochs.
//!
//! The sliding window ([`stream`]'s `SlidingWindowDatabase`) holds only
//! the live time range; everything the watermark evicts used to vanish.
//! This crate turns eviction into *sealing*: evicted (and late-dropped)
//! intervals are buffered by a [`SegmentStore`] and periodically sealed
//! into immutable, checksummed, footer-indexed segment files
//! (`{epoch:08}.seg`) tracked by an append-only manifest, and the
//! write-ahead log is reclaimed only up to what is **sealed and fsynced**
//! — never merely evicted. A [`SegmentReader`] rebuilds per-sequence
//! endpoint indexes ([`tpminer::SeqIndex`]) from cold segments on demand,
//! so the existing incremental miner can re-mine any historical time range
//! under a mining budget, with memory bounded by one segment plus the
//! loaded range — windows larger than RAM via spill-and-reload.
//!
//! The division of labour:
//!
//! - [`format`] — the on-disk segment file layout (CRC framing shared
//!   byte-for-byte with the WAL, per-sequence footer index, fixed trailer);
//! - [`store`] — the writer: buffering, the two-step seal protocol, the
//!   manifest, crash recovery on open, sticky degradation on seal failure;
//! - [`reader`] — the read-only side: range loads that reconstruct
//!   minable state for `[from, to]` without touching the writer.
//!
//! See `docs/STORAGE.md` for the format diagram, the seal/reclaim
//! lifecycle, and the out-of-core tuning table.
//!
//! ```
//! use segment::{SegmentOptions, SegmentReader, SegmentStore};
//!
//! let dir = std::env::temp_dir().join(format!("seg-doc-{}", std::process::id()));
//! let mut store = SegmentStore::open(&dir, SegmentOptions::default()).unwrap();
//! store.append(1, "fever", 0, 5);
//! store.append(1, "rash", 3, 9);
//! assert!(store.seal());
//!
//! let reader = SegmentReader::open(&dir).unwrap();
//! let load = reader.load_range(0, 10).unwrap();
//! assert_eq!(load.sequences, 1);
//! assert_eq!(load.intervals, 2);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
pub mod reader;
pub mod store;

pub use format::{Footer, ParsedSegment, SeqEntry};
pub use reader::{RangeLoad, SegmentReader};
pub use store::{
    SegmentMeta, SegmentOptions, SegmentStats, SegmentStore, DEFAULT_SEAL_BYTES, MANIFEST_FILE,
};

/// Errors from sealing, opening, or reading segments.
#[derive(Debug)]
pub enum SegmentError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A segment file, footer, or manifest failed validation.
    Corrupt(String),
}

impl SegmentError {
    /// A corruption error with the given reason.
    pub fn corrupt(reason: impl Into<String>) -> Self {
        SegmentError::Corrupt(reason.into())
    }
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::Io(e) => write!(f, "segment I/O error: {e}"),
            SegmentError::Corrupt(reason) => write!(f, "segment corrupt: {reason}"),
        }
    }
}

impl std::error::Error for SegmentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SegmentError::Io(e) => Some(e),
            SegmentError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for SegmentError {
    fn from(e: std::io::Error) -> Self {
        SegmentError::Io(e)
    }
}
