//! Corruption-path tests against the committed segment fixtures under
//! `tests/fixtures/seg/` (repo root).
//!
//! The fixtures were produced by the real pipeline —
//! `ptpminer-cli stream --segment-dir … --segment-bytes 1` over a small
//! workload — then damaged deterministically:
//!
//! - `clean/`     — 3 sealed segments + MANIFEST, untouched
//! - `bit_flip/`  — one bit flipped inside segment 0's first body frame
//!   (the footer still validates; only the per-record CRC scan catches it)
//! - `truncated/` — segment 1 cut in half (footer and trailer gone)
//!
//! They pin the on-disk format: a byte-level change to the segment layout
//! that silently reads old files differently will fail here first.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use segment::{SegmentOptions, SegmentReader, SegmentStore};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures/seg")
        .join(name)
}

fn temp_copy(of: &Path, tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "seg-fixture-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    for entry in std::fs::read_dir(of).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dir.join(entry.file_name())).unwrap();
    }
    dir
}

#[test]
fn clean_fixture_reads_fully() {
    let reader = SegmentReader::open(fixture("clean")).unwrap();
    assert_eq!(reader.segments().len(), 3);
    assert_eq!(reader.records(), 5);
    let load = reader.load_range(0, 60).unwrap();
    assert_eq!(load.intervals, 5);
    assert_eq!(load.sequences, 3);
    assert_eq!(load.segments_read, 3);
    // A narrow range skips non-intersecting segments by footer bounds
    // without reading them.
    let narrow = reader.load_range(21, 27).unwrap();
    assert_eq!(narrow.intervals, 2);
    assert_eq!(narrow.segments_read, 1);
    assert_eq!(narrow.segments_skipped, 2);
}

#[test]
fn bit_flip_fixture_errors_naming_the_segment() {
    let reader = SegmentReader::open(fixture("bit_flip")).unwrap();
    // The footer still validates, so the segment lists fine…
    assert_eq!(reader.segments().len(), 3);
    // …but decoding its body must fail loudly, naming the file — never
    // silently dropping records.
    let err = reader.load_range(0, 60).unwrap_err();
    assert!(err.to_string().contains("00000000.seg"), "{err}");
    // A range that skips the damaged segment by its footer time bounds
    // still answers from the healthy ones.
    let load = reader.load_range(21, 60).unwrap();
    assert_eq!(load.intervals, 3);
    assert_eq!(load.segments_read, 2);
}

#[test]
fn truncated_fixture_errors_on_read_and_is_quarantined_on_reopen() {
    let reader = SegmentReader::open(fixture("truncated")).unwrap();
    let err = reader.load_range(0, 60).unwrap_err();
    assert!(err.to_string().contains("00000001.seg"), "{err}");

    // A writer reopening the same directory (work on a temp copy: the
    // store mutates) must exclude the listed-but-corrupt segment, keep it
    // on disk for forensics, and carry on healthy in a fresh epoch.
    let dir = temp_copy(&fixture("truncated"), "reopen");
    let mut store = SegmentStore::open(&dir, SegmentOptions::default()).unwrap();
    assert_eq!(store.stats().segments_corrupt, 1);
    assert!(!store.is_degraded());
    assert!(dir.join("00000001.seg").exists(), "kept for forensics");
    store.append(9, "after", 100, 110);
    assert!(store.seal());
    assert!(
        dir.join("00000003.seg").exists(),
        "sealing resumes past every on-disk epoch"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clean_fixture_reopens_with_nothing_to_repair() {
    let dir = temp_copy(&fixture("clean"), "noop");
    let store = SegmentStore::open(&dir, SegmentOptions::default()).unwrap();
    let stats = store.stats();
    assert_eq!(stats.segments_corrupt, 0);
    assert_eq!(stats.segments_missing, 0);
    assert_eq!(stats.segments_adopted, 0);
    assert_eq!(stats.partials_deleted, 0);
    assert_eq!(stats.manifest_lines_dropped, 0);
    assert_eq!(store.segments().len(), 3);
    std::fs::remove_dir_all(&dir).ok();
}
