//! Umbrella crate for the P-TPMiner reproduction.
//!
//! This crate re-exports the public API of every workspace crate so that the
//! examples under `examples/` and the integration tests under `tests/` can
//! exercise the whole system through a single dependency:
//!
//! - [`interval_core`] — the interval data model: event intervals, sequences,
//!   databases, Allen relations, the endpoint representation and the
//!   [`interval_core::TemporalPattern`] type, plus the ground-truth
//!   containment matcher.
//! - [`tpminer`] — the paper's contribution: the TPMiner pattern-growth miner,
//!   the probabilistic P-TPMiner, the pruning techniques and closed-pattern
//!   mining.
//! - [`baselines`] — the comparison algorithms: TPrefixSpan, an
//!   IEMiner-style level-wise miner, an H-DFS-style vertical miner and a
//!   naive oracle.
//! - [`synthgen`] — the QUEST-style synthetic interval workload generator.
//! - [`datasets`] — realistic dataset emulators (library loans, stock state
//!   intervals, gesture annotations) and text I/O.
//! - [`stream`] — streaming ingestion: a sliding-window database over
//!   timestamped interval events and an incremental miner that refreshes
//!   only the partitions the latest events touched.
//! - [`durability`] — crash safety for the streaming tier: a checksummed
//!   write-ahead log with epoch-rotated segments, recovery-by-replay, and
//!   a fault-injecting filesystem shim for crash-point tests.
//!
//! # Quickstart
//!
//! ```
//! use ptpminer::prelude::*;
//!
//! // Build a tiny database: "fever overlaps rash" appears in 2 of 3 patients.
//! let mut db = DatabaseBuilder::new();
//! db.sequence().interval("fever", 0, 10).interval("rash", 5, 20);
//! db.sequence().interval("fever", 2, 9).interval("rash", 4, 15);
//! db.sequence().interval("fever", 0, 4).interval("rash", 6, 8);
//! let db = db.build();
//!
//! let result = TpMiner::new(MinerConfig::with_min_support(2)).mine(&db);
//! assert!(result
//!     .patterns()
//!     .iter()
//!     .any(|p| p.pattern.display(db.symbols()).to_string().contains("fever")));
//! ```

#![forbid(unsafe_code)]

pub use baselines;
pub use datasets;
pub use durability;
pub use interval_core;
pub use stream;
pub use synthgen;
pub use tpminer;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use baselines::{HDfsMiner, IeMiner, NaiveMiner, TPrefixSpan};
    pub use datasets::{
        gesture::GestureConfig, icu::IcuConfig, library::LibraryConfig, stock::StockConfig,
    };
    pub use interval_core::{
        compose, AllenRelation, DatabaseBuilder, EventInterval, IntervalDatabase, IntervalSequence,
        MatchConstraints, RelationSet, SymbolTable, TemporalPattern, UncertainDatabase,
    };
    pub use synthgen::{QuestConfig, QuestGenerator};
    pub use tpminer::{
        closed_patterns, generate_rules, maximal_patterns, mine_top_k, MinerConfig, MiningResult,
        ProbabilisticConfig, ProbabilisticMiner, PruningConfig, RuleConfig, TopKConfig, TpMiner,
    };
}
