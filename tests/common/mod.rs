//! Shared proptest strategies for the cross-crate integration tests.
//!
//! Each integration-test binary compiles this module independently and uses
//! a subset of it, so unused-item warnings are expected noise.
#![allow(dead_code)]

use interval_core::{EventInterval, IntervalDatabase, IntervalSequence, SymbolId, SymbolTable};
use proptest::prelude::*;

/// Strategy: one event interval over a tiny alphabet and time grid, so that
/// coincidences (meets, equal starts, ties) are common.
pub fn small_interval(max_symbol: u32) -> impl Strategy<Value = EventInterval> {
    (0..max_symbol, 0i64..8, 1i64..5)
        .prop_map(|(s, start, len)| EventInterval::new_unchecked(SymbolId(s), start, start + len))
}

/// Strategy: a small interval database (dense enough to be interesting,
/// small enough for the exponential oracles).
pub fn small_database() -> impl Strategy<Value = IntervalDatabase> {
    let seq = proptest::collection::vec(small_interval(4), 0..6)
        .prop_map(IntervalSequence::from_intervals);
    proptest::collection::vec(seq, 1..6).prop_map(|sequences| {
        IntervalDatabase::from_parts(SymbolTable::with_synthetic_symbols(4), sequences)
    })
}

/// Strategy: a list of concrete intervals to build arrangements from.
pub fn interval_set() -> impl Strategy<Value = Vec<EventInterval>> {
    proptest::collection::vec(small_interval(3), 1..5)
}
