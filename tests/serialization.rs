//! Serde round trips for the public data types — downstream users persist
//! mined results and datasets as JSON.

mod common;

use interval_core::{AllenRelation, EventInterval, IntervalDatabase, SymbolId, TemporalPattern};
use proptest::prelude::*;
use tpminer::{FrequentPattern, MinerConfig, MinerStats, PruningConfig, TpMiner};

fn json_round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let text = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&text).expect("deserialize")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn patterns_round_trip(ivs in common::interval_set()) {
        let p = TemporalPattern::arrangement_of(&ivs);
        prop_assert_eq!(json_round_trip(&p), p);
    }

    #[test]
    fn databases_round_trip_semantically(db in common::small_database()) {
        let back: IntervalDatabase = json_round_trip(&db);
        // The symbol table's lookup index is skipped during serde; compare
        // the observable content instead of PartialEq on the whole struct.
        prop_assert_eq!(back.sequences(), db.sequences());
        prop_assert_eq!(back.symbols().len(), db.symbols().len());
        // And mining the deserialized copy gives identical results.
        let a = TpMiner::new(MinerConfig::with_min_support(1)).mine(&db);
        let b = TpMiner::new(MinerConfig::with_min_support(1)).mine(&back);
        prop_assert_eq!(a.patterns(), b.patterns());
    }
}

#[test]
fn mining_results_round_trip() {
    let mut b = interval_core::DatabaseBuilder::new();
    b.sequence().interval("A", 0, 5).interval("B", 3, 8);
    b.sequence().interval("A", 2, 7).interval("B", 5, 9);
    let db = b.build();
    let result = TpMiner::new(MinerConfig::with_min_support(2)).mine(&db);

    let patterns: Vec<FrequentPattern> = json_round_trip(&result.patterns().to_vec());
    assert_eq!(patterns, result.patterns());

    // `elapsed` is persisted at microsecond precision; normalize before
    // comparing.
    let stats: MinerStats = json_round_trip(result.stats());
    let mut expected = result.stats().clone();
    expected.elapsed = std::time::Duration::from_micros(expected.elapsed.as_micros() as u64);
    assert_eq!(stats, expected);
}

#[test]
fn configs_round_trip() {
    let config = MinerConfig::with_min_support(7)
        .max_arity(4)
        .max_window(100)
        .pruning(PruningConfig::none());
    assert_eq!(json_round_trip(&config), config);
}

#[test]
fn scalar_types_round_trip() {
    assert_eq!(json_round_trip(&SymbolId(42)), SymbolId(42));
    let iv = EventInterval::new(SymbolId(1), -5, 9).unwrap();
    assert_eq!(json_round_trip(&iv), iv);
    for r in AllenRelation::ALL {
        assert_eq!(json_round_trip(&r), r);
    }
}

#[test]
fn symbol_table_rebuilds_lookup_after_deserialization() {
    let mut table = interval_core::SymbolTable::new();
    let fever = table.intern("fever");
    let mut back: interval_core::SymbolTable = json_round_trip(&table);
    // The name->id index is #[serde(skip)]; rebuild restores lookups.
    assert_eq!(back.lookup("fever"), None);
    back.rebuild_index();
    assert_eq!(back.lookup("fever"), Some(fever));
    assert_eq!(back.name(fever), "fever");
}
