//! The central correctness property of the whole workspace: every miner —
//! P-TPMiner (all pruning configurations, sequential and parallel) and the
//! three baselines — emits exactly the same `(pattern, support)` set, and
//! that set agrees with the brute-force containment oracle.

mod common;

use baselines::{HDfsMiner, IeMiner, NaiveMiner, TPrefixSpan};
use interval_core::matcher;
use proptest::prelude::*;
use tpminer::{MinerConfig, MiningBudget, ParallelTpMiner, PruningConfig, TpMiner};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_miners_agree(db in common::small_database(), min_sup in 1usize..4) {
        let reference = TpMiner::new(MinerConfig::with_min_support(min_sup)).mine(&db);
        let reference = reference.patterns();

        let tps = TPrefixSpan::new(min_sup).mine(&db);
        prop_assert_eq!(&tps.patterns[..], reference, "TPrefixSpan disagrees");

        let ie = IeMiner::new(min_sup).mine(&db);
        prop_assert_eq!(&ie.patterns[..], reference, "IEMiner disagrees");

        let hdfs = HDfsMiner::new(min_sup).mine(&db);
        prop_assert_eq!(&hdfs.patterns[..], reference, "H-DFS disagrees");

        let par = ParallelTpMiner::new(MinerConfig::with_min_support(min_sup), 3).mine(&db);
        prop_assert_eq!(par.patterns(), reference, "parallel miner disagrees");
    }

    #[test]
    fn mined_supports_match_oracle(db in common::small_database(), min_sup in 1usize..4) {
        let result = TpMiner::new(MinerConfig::with_min_support(min_sup)).mine(&db);
        for fp in result.patterns() {
            prop_assert_eq!(
                matcher::support(&db, &fp.pattern),
                fp.support,
                "support mismatch for {}",
                fp.pattern.display(db.symbols())
            );
            prop_assert!(fp.support >= min_sup);
        }
    }

    #[test]
    fn miner_is_complete_up_to_arity_three(db in common::small_database(), min_sup in 1usize..4) {
        // The naive oracle enumerates every arrangement present in the data;
        // the miner (capped at the same arity) must find each frequent one.
        let naive = NaiveMiner::new(min_sup, 3).mine(&db);
        let capped = TpMiner::new(MinerConfig::with_min_support(min_sup).max_arity(3)).mine(&db);
        prop_assert_eq!(&naive.patterns[..], capped.patterns(), "naive oracle disagrees");
    }

    #[test]
    fn pruning_never_changes_output(db in common::small_database(), min_sup in 1usize..4) {
        let all = TpMiner::new(
            MinerConfig::with_min_support(min_sup).pruning(PruningConfig::all()),
        )
        .mine(&db);
        for pruning in [
            PruningConfig::none(),
            PruningConfig { pair_pruning: false, ..PruningConfig::all() },
            PruningConfig { postfix_pruning: false, ..PruningConfig::all() },
            PruningConfig { symbol_pruning: false, ..PruningConfig::all() },
        ] {
            let other = TpMiner::new(
                MinerConfig::with_min_support(min_sup).pruning(pruning),
            )
            .mine(&db);
            prop_assert_eq!(other.patterns(), all.patterns(), "pruning {:?}", pruning);
        }
    }

    #[test]
    fn patterns_are_unique_and_canonically_sorted(db in common::small_database()) {
        let result = TpMiner::new(MinerConfig::with_min_support(1)).mine(&db);
        let patterns = result.patterns();
        for w in patterns.windows(2) {
            let key0 = (w[0].pattern.arity(), &w[0].pattern);
            let key1 = (w[1].pattern.arity(), &w[1].pattern);
            prop_assert!(key0 < key1, "output not strictly sorted / deduplicated");
        }
    }

    #[test]
    fn window_constrained_supports_match_oracle(
        db in common::small_database(),
        min_sup in 1usize..3,
        window in 1i64..8,
    ) {
        let result = TpMiner::new(
            MinerConfig::with_min_support(min_sup).max_window(window),
        )
        .mine(&db);
        for fp in result.patterns() {
            prop_assert_eq!(
                matcher::support_within_window(&db, &fp.pattern, Some(window)),
                fp.support,
                "window support mismatch for {} (w={})",
                fp.pattern.display(db.symbols()),
                window
            );
        }
        // Completeness: every unconstrained frequent pattern that the window
        // oracle still accepts must be in the windowed output.
        let unconstrained = TpMiner::new(MinerConfig::with_min_support(min_sup)).mine(&db);
        for fp in unconstrained.patterns() {
            let wsup = matcher::support_within_window(&db, &fp.pattern, Some(window));
            if wsup >= min_sup {
                prop_assert!(
                    result.patterns().iter().any(|p| p.pattern == fp.pattern),
                    "windowed miner missed {}",
                    fp.pattern.display(db.symbols())
                );
            }
        }
        // Soundness of the count direction: windowed support <= plain support.
        for fp in result.patterns() {
            prop_assert!(fp.support <= matcher::support(&db, &fp.pattern));
        }
    }

    #[test]
    fn gap_constrained_supports_match_oracle(
        db in common::small_database(),
        min_sup in 1usize..3,
        gap in 1i64..6,
    ) {
        use interval_core::MatchConstraints;
        let result = TpMiner::new(MinerConfig::with_min_support(min_sup).max_gap(gap)).mine(&db);
        for fp in result.patterns() {
            prop_assert_eq!(
                matcher::support_constrained(&db, &fp.pattern, MatchConstraints::gap(gap)),
                fp.support,
                "gap support mismatch for {} (g={})",
                fp.pattern.display(db.symbols()),
                gap
            );
        }
        // Completeness against the oracle.
        let unconstrained = TpMiner::new(MinerConfig::with_min_support(min_sup)).mine(&db);
        for fp in unconstrained.patterns() {
            let gsup =
                matcher::support_constrained(&db, &fp.pattern, MatchConstraints::gap(gap));
            if gsup >= min_sup {
                prop_assert!(
                    result.patterns().iter().any(|p| p.pattern == fp.pattern),
                    "gap miner missed {}",
                    fp.pattern.display(db.symbols())
                );
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_across_thread_counts(
        db in common::small_database(),
        min_sup in 1usize..4,
        raw_window in 0i64..8,
    ) {
        // The work-queue scheduler must reproduce the sequential output —
        // same patterns, same exact supports, same canonical order, same
        // termination — no matter how many workers race on the queue or
        // which claim interleaving the run happens to get, with and
        // without a window constraint reshaping the frontiers.
        let window = (raw_window > 0).then_some(raw_window);
        let mut config = MinerConfig::with_min_support(min_sup);
        if let Some(w) = window {
            config = config.max_window(w);
        }
        let seq = TpMiner::new(config).mine(&db);
        for threads in [1usize, 2, 8] {
            let par = ParallelTpMiner::new(config, threads).mine(&db);
            prop_assert_eq!(
                par.patterns(),
                seq.patterns(),
                "threads={} window={:?}",
                threads,
                window
            );
            prop_assert_eq!(par.termination(), seq.termination());
        }
    }

    #[test]
    fn budget_truncation_stays_sound_for_all_miners(
        db in common::small_database(),
        min_sup in 1usize..3,
        max_nodes in 1u64..20,
    ) {
        // Soundness under truncation: a node cap may drop patterns, but
        // every reported pattern must carry its exact full-run support —
        // sequentially and across work-queue worker counts (the shared
        // meter bounds the *sum* of nodes over all workers).
        let config = MinerConfig::with_min_support(min_sup);
        let full = TpMiner::new(config).mine(&db);

        let truncated = TpMiner::new(config)
            .with_budget(MiningBudget::unlimited().with_max_nodes(max_nodes))
            .mine(&db);
        prop_assert!(truncated.stats().nodes_explored <= max_nodes);
        for fp in truncated.patterns() {
            prop_assert_eq!(full.support_of(&fp.pattern), Some(fp.support));
        }
        if truncated.is_exhaustive() {
            prop_assert_eq!(truncated.patterns(), full.patterns());
        }

        for threads in [2usize, 8] {
            let par = ParallelTpMiner::new(config, threads)
                .with_budget(MiningBudget::unlimited().with_max_nodes(max_nodes))
                .mine(&db);
            prop_assert!(par.stats().nodes_explored <= max_nodes, "threads={}", threads);
            for fp in par.patterns() {
                prop_assert_eq!(full.support_of(&fp.pattern), Some(fp.support));
            }
            if par.is_exhaustive() {
                prop_assert_eq!(par.patterns(), full.patterns(), "threads={}", threads);
            }
        }
    }

    #[test]
    fn every_subpattern_of_a_frequent_pattern_is_frequent(
        db in common::small_database(),
        min_sup in 1usize..3,
    ) {
        // Anti-monotonicity, observed end-to-end on the miner output.
        let result = TpMiner::new(MinerConfig::with_min_support(min_sup)).mine(&db);
        let patterns = result.patterns();
        for fp in patterns {
            if fp.pattern.arity() < 2 {
                continue;
            }
            for slot in 0..fp.pattern.arity() {
                let sub = baselines::ieminer::remove_slot(&fp.pattern, slot);
                prop_assert!(
                    patterns.iter().any(|p| p.pattern == sub),
                    "{} frequent but its sub-pattern {} missing",
                    fp.pattern.display(db.symbols()),
                    sub.display(db.symbols())
                );
            }
        }
    }
}
