//! Property tests for the probabilistic layer: P-TPMiner reduces to TPMiner
//! on certain data, expected supports are consistent with the exact
//! semantics, and the PT4 bound really bounds.

mod common;

use interval_core::probability::{
    containment_probability, containment_upper_bound, expected_support, ProbabilityConfig,
};
use interval_core::{
    matcher, TemporalPattern, UncertainDatabase, UncertainInterval, UncertainSequence,
};
use proptest::prelude::*;
use tpminer::{MinerConfig, ProbabilisticConfig, ProbabilisticMiner, TpMiner};

/// Attach probabilities from a fixed palette to a certain database.
fn uncertainify(db: &interval_core::IntervalDatabase, salt: u64) -> UncertainDatabase {
    let palette = [1.0, 0.75, 0.5, 0.25];
    let mut i = salt as usize;
    let sequences = db
        .sequences()
        .iter()
        .map(|s| {
            s.iter()
                .map(|&iv| {
                    i = i
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    UncertainInterval::new(iv, palette[(i >> 33) % palette.len()]).unwrap()
                })
                .collect::<UncertainSequence>()
        })
        .collect();
    UncertainDatabase::from_parts(db.symbols().clone(), sequences)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn certain_probabilistic_mining_equals_deterministic(
        db in common::small_database(),
        min_sup in 1usize..4,
    ) {
        let udb = UncertainDatabase::from_certain(&db);
        let det = TpMiner::new(MinerConfig::with_min_support(min_sup)).mine(&db);
        let prob = ProbabilisticMiner::new(
            ProbabilisticConfig::with_min_expected_support(min_sup as f64),
        )
        .mine(&udb);
        prop_assert_eq!(det.len(), prob.len());
        for (d, p) in det.patterns().iter().zip(prob.patterns()) {
            prop_assert_eq!(&d.pattern, &p.pattern);
            prop_assert!((p.expected_support - d.support as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn upper_bound_dominates_exact_probability(db in common::small_database(), salt in 0u64..32) {
        let udb = uncertainify(&db, salt);
        let cfg = ProbabilityConfig { exact_limit: 16, ..Default::default() };
        // check on every pattern of the full world up to arity 2
        let full = TpMiner::new(MinerConfig::with_min_support(1).max_arity(2))
            .mine(&db);
        for fp in full.patterns() {
            for (i, seq) in udb.sequences().iter().enumerate() {
                let p = containment_probability(seq, &fp.pattern, &cfg, i as u64);
                let bound = containment_upper_bound(seq, &fp.pattern);
                prop_assert!(
                    bound >= p - 1e-9,
                    "bound {} < probability {} for {}",
                    bound, p, fp.pattern.display(db.symbols())
                );
                prop_assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn expected_support_is_anti_monotone(db in common::small_database(), salt in 0u64..32) {
        let udb = uncertainify(&db, salt);
        let cfg = ProbabilityConfig { exact_limit: 16, ..Default::default() };
        let full = TpMiner::new(MinerConfig::with_min_support(1).max_arity(3)).mine(&db);
        for fp in full.patterns() {
            if fp.pattern.arity() < 2 {
                continue;
            }
            let esup = expected_support(&udb, &fp.pattern, &cfg);
            for slot in 0..fp.pattern.arity() {
                let sub = baselines::ieminer::remove_slot(&fp.pattern, slot);
                let sub_esup = expected_support(&udb, &sub, &cfg);
                prop_assert!(
                    sub_esup >= esup - 1e-9,
                    "E[sup] not anti-monotone: {} -> {}",
                    esup, sub_esup
                );
            }
        }
    }

    #[test]
    fn probabilistic_miner_output_satisfies_threshold(
        db in common::small_database(),
        salt in 0u64..16,
    ) {
        let udb = uncertainify(&db, salt);
        let min_esup = 1.25;
        let cfg = ProbabilisticConfig {
            probability: ProbabilityConfig { exact_limit: 16, ..Default::default() },
            ..ProbabilisticConfig::with_min_expected_support(min_esup)
        };
        let result = ProbabilisticMiner::new(cfg).mine(&udb);
        for p in result.patterns() {
            prop_assert!(p.expected_support >= min_esup);
            let recomputed = expected_support(&udb, &p.pattern, &cfg.probability);
            prop_assert!((recomputed - p.expected_support).abs() < 1e-9);
            prop_assert!(p.expected_support <= p.world_support as f64 + 1e-9);
        }
    }

    #[test]
    fn world_sampling_frequency_approaches_probability(db in common::small_database(), salt in 0u64..8) {
        // Monte-Carlo estimator sanity over the model itself: empirical
        // containment frequency over sampled worlds approximates the exact
        // containment probability.
        let udb = uncertainify(&db, salt);
        let cfg = ProbabilityConfig { exact_limit: 16, ..Default::default() };
        let full = TpMiner::new(MinerConfig::with_min_support(1).max_arity(2)).mine(
            &{
                let sequences = udb.sequences().iter().map(|s| s.to_certain()).collect();
                interval_core::IntervalDatabase::from_parts(udb.symbols().clone(), sequences)
            },
        );
        let Some(fp) = full.patterns().iter().max_by_key(|p| p.pattern.arity()) else {
            return Ok(());
        };
        let pattern: &TemporalPattern = &fp.pattern;
        let exact: f64 = expected_support(&udb, pattern, &cfg);
        let trials = 600u32;
        let mut acc = 0.0f64;
        for t in 0..trials {
            let world = udb.sample_world(t as u64 * 977 + salt);
            acc += matcher::support(&world, pattern) as f64;
        }
        let sampled = acc / f64::from(trials);
        // ~3-sigma tolerance for the worst case (variance <= n/4 per world)
        let tol = 3.0 * (udb.len() as f64 / 4.0 / f64::from(trials)).sqrt() + 0.05;
        prop_assert!(
            (sampled - exact).abs() <= tol,
            "sampled {} vs exact {} (tol {})",
            sampled, exact, tol
        );
    }
}
