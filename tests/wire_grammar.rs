//! Property tests over the wire request grammar (`interval_core::wire`),
//! focused on the read-side verbs the service tier streams results for:
//!
//! - **round trip**: formatting a structurally valid `QUERY` / `SUBSCRIBE`
//!   / `UNSUBSCRIBE` frame (any keyword order, any casing, messy
//!   whitespace) and parsing it back yields exactly the intended request;
//! - **junk rejection without desync**: arbitrary printable garbage never
//!   panics the parser, and — because each line parses independently — a
//!   junk line never corrupts the parse of the valid frame after it.

use interval_core::wire::Request;
use proptest::prelude::*;

const STREAMS: &[&str] = &["s", "vitals", "tenant-7.shard_2", "a1-b2.c"];
const SYMBOLS: &[&str] = &["fever", "Rash", "x9", "alpha_3"];

/// Applies one of three casings to a keyword.
fn cased(word: &str, casing: u8) -> String {
    match casing % 3 {
        0 => word.to_ascii_uppercase(),
        1 => word.to_ascii_lowercase(),
        _ => word
            .chars()
            .enumerate()
            .map(|(i, c)| {
                if i % 2 == 0 {
                    c.to_ascii_lowercase()
                } else {
                    c.to_ascii_uppercase()
                }
            })
            .collect(),
    }
}

/// Whitespace separator: one to three spaces or a tab.
fn sep(kind: u8) -> &'static str {
    match kind % 4 {
        0 => " ",
        1 => "  ",
        2 => "   ",
        _ => "\t",
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// QUERY round trip: for every combination of PREFIX/TOP presence,
    /// argument order, keyword casing and whitespace, the formatted line
    /// parses back to exactly the intended request.
    #[test]
    fn query_frames_round_trip(
        (stream_i, sym_i, top) in (0usize..4, 0usize..4, 1usize..10_000),
        (has_prefix, has_top, top_first) in (0u8..2, 0u8..2, 0u8..2),
        (casing, ws) in (0u8..3, 0u8..4),
    ) {
        let stream = STREAMS[stream_i];
        let symbol = SYMBOLS[sym_i];
        let prefix = (has_prefix == 1).then(|| symbol.to_owned());
        let top_arg = (has_top == 1).then_some(top);

        let mut clauses: Vec<String> = Vec::new();
        let prefix_clause = format!("{}{}{}", cased("PREFIX", casing), sep(ws), symbol);
        let top_clause = format!("{}{}{}", cased("TOP", casing), sep(ws), top);
        if top_first == 1 {
            if top_arg.is_some() { clauses.push(top_clause); }
            if prefix.is_some() { clauses.push(prefix_clause); }
        } else {
            if prefix.is_some() { clauses.push(prefix_clause); }
            if top_arg.is_some() { clauses.push(top_clause); }
        }
        let mut line = format!("{}{}{}", cased("QUERY", casing), sep(ws), stream);
        for clause in &clauses {
            line.push_str(sep(ws));
            line.push_str(clause);
        }

        let parsed = Request::parse_line(&line).expect("valid frame").expect("a request");
        prop_assert_eq!(parsed, Request::Query {
            stream: stream.to_owned(),
            prefix,
            top: top_arg,
        });
    }

    /// SUBSCRIBE / UNSUBSCRIBE round trip across casing and whitespace.
    #[test]
    fn subscribe_frames_round_trip(
        (stream_i, casing, ws, bare_unsub) in (0usize..4, 0u8..3, 0u8..4, 0u8..2),
    ) {
        let stream = STREAMS[stream_i];
        let line = format!("{}{}{}", cased("SUBSCRIBE", casing), sep(ws), stream);
        let parsed = Request::parse_line(&line).expect("valid frame").expect("a request");
        prop_assert_eq!(parsed, Request::Subscribe { stream: stream.to_owned() });

        let line = if bare_unsub == 1 {
            cased("UNSUBSCRIBE", casing)
        } else {
            format!("{}{}{}", cased("UNSUBSCRIBE", casing), sep(ws), stream)
        };
        let parsed = Request::parse_line(&line).expect("valid frame").expect("a request");
        let expected = if bare_unsub == 1 { None } else { Some(stream.to_owned()) };
        prop_assert_eq!(parsed, Request::Unsubscribe { stream: expected });
    }

    /// Junk never panics the parser, and a junk line never desyncs the
    /// next frame: parsing garbage then a known-good line gives exactly
    /// the same result as parsing the good line alone.
    #[test]
    fn junk_is_rejected_without_desync(junk in "{0,60}") {
        // Must classify (Ok or Err) without panicking.
        let _ = Request::parse_line(&junk);

        let good = "QUERY vitals PREFIX fever TOP 7";
        let after_junk = Request::parse_line(good);
        prop_assert_eq!(after_junk, Ok(Some(Request::Query {
            stream: "vitals".to_owned(),
            prefix: Some("fever".to_owned()),
            top: Some(7),
        })));
    }

    /// Structured near-misses of the SUBSCRIBE grammar (missing stream,
    /// trailing junk, invalid names) are Malformed/BadStreamName errors,
    /// never accepted and never a panic.
    #[test]
    fn subscribe_near_misses_error_cleanly(
        (variant, stream_i) in (0u8..4, 0usize..4),
    ) {
        let stream = STREAMS[stream_i];
        let line = match variant {
            0 => "SUBSCRIBE".to_owned(),
            1 => format!("SUBSCRIBE {stream} extra-arg"),
            2 => format!("SUBSCRIBE -{stream}"),
            _ => format!("SUBSCRIBE ../{stream}"),
        };
        prop_assert!(Request::parse_line(&line).is_err());
    }
}
