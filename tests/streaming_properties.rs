//! Property and agreement tests for the streaming subsystem
//! (`crates/stream`), checked against straightforward from-scratch models:
//!
//! - eviction never drops a live interval (and never keeps an expired one):
//!   after any op sequence the window's contents equal a shadow log replayed
//!   with the declared watermark semantics;
//! - the incrementally maintained per-symbol support counts always equal a
//!   from-scratch recount of the materialized window;
//! - at every watermark, [`stream::IncrementalMiner`] agrees with the batch
//!   [`tpminer::TpMiner`] run on the materialized window — the same
//!   patterns with the same exact supports.

use std::collections::BTreeMap;

use interval_core::{StreamEvent, SymbolId, Time};
use proptest::prelude::*;
use stream::{IncrementalMiner, SlidingWindowDatabase};
use tpminer::{MinerConfig, TpMiner};

/// The sliding-window length every test here uses.
const WINDOW: Time = 20;

/// One step of a randomly generated ingest run.
#[derive(Debug, Clone)]
enum Op {
    Interval {
        sequence: u64,
        symbol: u32,
        start: Time,
        end: Time,
    },
    Watermark(Time),
}

impl Op {
    fn event(&self) -> StreamEvent {
        match *self {
            Op::Interval {
                sequence,
                symbol,
                start,
                end,
            } => StreamEvent::Interval {
                sequence,
                symbol: format!("s{symbol}"),
                start,
                end,
            },
            Op::Watermark(at) => StreamEvent::Watermark(at),
        }
    }
}

/// Strategy: ~1 in 4 ops advances the watermark; the rest insert intervals
/// over a tiny alphabet/sequence space so that co-occurrence (and therefore
/// mining work) is common.
fn op() -> impl Strategy<Value = Op> {
    (0u32..4, 0u64..4, 0u32..4, 0i64..50, 1i64..8).prop_map(|(kind, sequence, symbol, t, len)| {
        if kind == 0 {
            Op::Watermark(t + len)
        } else {
            Op::Interval {
                sequence,
                symbol,
                start: t,
                end: t + len,
            }
        }
    })
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(op(), 1..40)
}

/// A from-scratch model of the window: every accepted, still-live interval,
/// replayed with the documented semantics (late completions dropped,
/// regressing watermarks ignored, eviction strictly below
/// `watermark − WINDOW`).
#[derive(Default)]
struct Shadow {
    watermark: Option<Time>,
    /// `sequence id → (symbol name, start, end)` for every live interval.
    live: BTreeMap<u64, Vec<(String, Time, Time)>>,
}

impl Shadow {
    fn cutoff(&self) -> Option<Time> {
        self.watermark.map(|w| w.saturating_sub(WINDOW))
    }

    fn apply(&mut self, op: &Op) {
        match *op {
            Op::Interval {
                sequence,
                symbol,
                start,
                end,
            } => {
                if self.cutoff().is_some_and(|cutoff| end < cutoff) {
                    return; // late: dropped on arrival
                }
                self.live
                    .entry(sequence)
                    .or_default()
                    .push((format!("s{symbol}"), start, end));
            }
            Op::Watermark(at) => {
                if self.watermark.is_some_and(|w| at < w) {
                    return; // regression: ignored
                }
                self.watermark = Some(at);
                let cutoff = at.saturating_sub(WINDOW);
                for intervals in self.live.values_mut() {
                    intervals.retain(|&(_, _, end)| end >= cutoff);
                }
                self.live.retain(|_, intervals| !intervals.is_empty());
            }
        }
    }

    /// The expected window contents: per sequence (in id order), the sorted
    /// list of `(symbol name, start, end)` triples.
    fn contents(&self) -> Vec<Vec<(String, Time, Time)>> {
        self.live
            .values()
            .map(|intervals| {
                let mut sorted = intervals.clone();
                sorted.sort();
                sorted
            })
            .collect()
    }
}

/// The window's actual contents in the same shape as [`Shadow::contents`].
fn window_contents(window: &SlidingWindowDatabase) -> Vec<Vec<(String, Time, Time)>> {
    let db = window.snapshot_database();
    db.sequences()
        .iter()
        .map(|seq| {
            let mut intervals: Vec<(String, Time, Time)> = seq
                .intervals()
                .iter()
                .map(|iv| (db.symbols().name(iv.symbol).to_owned(), iv.start, iv.end))
                .collect();
            intervals.sort();
            intervals
        })
        .collect()
}

/// Recounts per-symbol support (sequences containing the symbol) from the
/// materialized window, ignoring the incremental bookkeeping entirely.
fn recount_support(window: &SlidingWindowDatabase) -> BTreeMap<SymbolId, usize> {
    let db = window.snapshot_database();
    let mut support = BTreeMap::new();
    for seq in db.sequences() {
        let mut symbols: Vec<SymbolId> = seq.intervals().iter().map(|iv| iv.symbol).collect();
        symbols.sort_unstable();
        symbols.dedup();
        for symbol in symbols {
            *support.entry(symbol).or_insert(0) += 1;
        }
    }
    support
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eviction keeps exactly the live intervals: everything with
    /// `end >= watermark − WINDOW` survives, everything below is gone, open
    /// intervals and accepted completions are never lost early.
    #[test]
    fn window_contents_match_shadow_replay(ops in ops()) {
        let mut window = SlidingWindowDatabase::new(WINDOW);
        let mut shadow = Shadow::default();
        for op in &ops {
            window.ingest(op.event()).unwrap();
            shadow.apply(op);
            prop_assert_eq!(window.watermark(), shadow.watermark);
        }
        prop_assert_eq!(window_contents(&window), shadow.contents());
    }

    /// The incrementally maintained support counts equal a from-scratch
    /// recount after any op sequence.
    #[test]
    fn incremental_support_matches_rebuild(ops in ops()) {
        let mut window = SlidingWindowDatabase::new(WINDOW);
        for op in &ops {
            window.ingest(op.event()).unwrap();
        }
        let incremental: BTreeMap<SymbolId, usize> = window.support_counts().collect();
        prop_assert_eq!(incremental, recount_support(&window));
    }

    /// At every refresh point the incremental miner reports exactly the
    /// batch miner's result for the current window: same patterns, same
    /// supports, in the same canonical order.
    #[test]
    fn incremental_miner_agrees_with_batch(ops in ops()) {
        let config = MinerConfig::with_min_support(2);
        let mut window = SlidingWindowDatabase::new(WINDOW);
        let mut miner = IncrementalMiner::new(config, 0);
        for op in &ops {
            window.ingest(op.event()).unwrap();
            if matches!(op, Op::Watermark(_)) {
                let snapshot = miner.refresh(&mut window);
                let batch = TpMiner::new(config).mine(&window.snapshot_database());
                prop_assert_eq!(snapshot.result.patterns(), batch.patterns());
            }
        }
        // Final refresh covers the tail after the last watermark.
        let snapshot = miner.refresh(&mut window);
        let batch = TpMiner::new(config).mine(&window.snapshot_database());
        prop_assert_eq!(snapshot.result.patterns(), batch.patterns());
    }
}

/// A deterministic end-to-end agreement check with open/close endpoint
/// events, eviction, and a threshold change — the exact scenario the
/// acceptance criteria name ("same patterns with the same supports").
#[test]
fn incremental_agrees_with_batch_through_open_close_and_slide() {
    let mut window = SlidingWindowDatabase::new(30);
    let config = MinerConfig::with_min_support(2);
    let mut miner = IncrementalMiner::new(config, 2);

    let events = [
        "open 1 fever 0",
        "interval 1 rash 3 9",
        "close 1 fever 6",
        "open 2 fever 2",
        "interval 2 rash 5 11",
        "close 2 fever 8",
        "watermark 12",
        "interval 3 fever 14 20",
        "interval 3 rash 16 22",
        "watermark 25",
        "interval 1 fever 40 46",
        "interval 2 fever 41 47",
        "watermark 72", // cutoff 42: everything before t=42 except the tail
    ];
    for (i, line) in events.iter().enumerate() {
        let event = StreamEvent::parse_line(line, i + 1).unwrap().unwrap();
        let at_watermark = matches!(event, StreamEvent::Watermark(_));
        window.ingest(event).unwrap();
        if at_watermark {
            let snapshot = miner.refresh(&mut window);
            let batch = TpMiner::new(config).mine(&window.snapshot_database());
            assert_eq!(
                snapshot.result.patterns(),
                batch.patterns(),
                "incremental and batch must agree exactly"
            );
            assert!(snapshot.result.is_exhaustive());
        }
    }
    assert!(window.stats().intervals_evicted > 0, "the slide evicted");

    // A threshold change forces (and gets) a correct full re-mine.
    let lowered = MinerConfig::with_min_support(1);
    miner.set_min_support(1);
    let snapshot = miner.refresh(&mut window);
    assert!(snapshot.refresh.full);
    let batch = TpMiner::new(lowered).mine(&window.snapshot_database());
    assert_eq!(snapshot.result.patterns(), batch.patterns());
}
