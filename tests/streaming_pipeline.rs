//! Concurrency tests for the pipelined refresh worker (`stream::worker`):
//!
//! - **shadow-replay parity**: for any op sequence, running every refresh
//!   on the background worker publishes, at every revision, exactly the
//!   snapshot the synchronous path publishes — same patterns, supports,
//!   window bounds, and refresh accounting (the bit-identical discipline
//!   the parallel miner established for parallel vs sequential);
//! - **stress under coalescing**: high-rate ingestion against a worker
//!   that cannot keep up must lose no events (conservation against the
//!   ingest counters), never double-count a refresh, and still converge
//!   to the exact batch result once drained;
//! - **shutdown**: a cancelled budget token (the SIGINT / `--timeout`
//!   path) stops an in-flight background refresh and the worker joins
//!   without deadlock, handing the miner back intact.

use std::sync::Arc;

use interval_core::{MiningBudget, StreamEvent, Termination, Time};
use proptest::prelude::*;
use stream::{IncrementalMiner, RefreshJob, RefreshWorker, SlidingWindowDatabase, SnapshotCell};
use tpminer::{MinerConfig, TpMiner};

const WINDOW: Time = 20;

#[derive(Debug, Clone)]
enum Op {
    Interval {
        sequence: u64,
        symbol: u32,
        start: Time,
        end: Time,
    },
    Watermark(Time),
}

impl Op {
    fn event(&self) -> StreamEvent {
        match *self {
            Op::Interval {
                sequence,
                symbol,
                start,
                end,
            } => StreamEvent::Interval {
                sequence,
                symbol: format!("s{symbol}"),
                start,
                end,
            },
            Op::Watermark(at) => StreamEvent::Watermark(at),
        }
    }
}

fn op() -> impl Strategy<Value = Op> {
    (0u32..4, 0u64..4, 0u32..4, 0i64..50, 1i64..8).prop_map(|(kind, sequence, symbol, t, len)| {
        if kind == 0 {
            Op::Watermark(t + len)
        } else {
            Op::Interval {
                sequence,
                symbol,
                start: t,
                end: t + len,
            }
        }
    })
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(op(), 1..40)
}

/// Runs `ops`, refreshing synchronously at every watermark, and returns
/// every published snapshot in revision order.
fn run_sync(ops: &[Op], config: MinerConfig) -> Vec<Arc<stream::PatternSnapshot>> {
    let mut window = SlidingWindowDatabase::new(WINDOW);
    let mut miner = IncrementalMiner::new(config, 0);
    let mut published = Vec::new();
    for op in ops {
        window.ingest(op.event()).unwrap();
        if matches!(op, Op::Watermark(_)) {
            published.push(miner.refresh(&mut window));
        }
    }
    published
}

/// Runs `ops`, submitting every watermark's epoch to the background worker
/// (blocking submission: no trigger is coalesced, so revisions line up 1:1
/// with the synchronous run) dispatching over a shard pool of `pool_size`
/// mining threads, and returns every published snapshot.
fn run_pipelined(
    ops: &[Op],
    config: MinerConfig,
    pool_size: usize,
) -> Vec<Arc<stream::PatternSnapshot>> {
    let mut window = SlidingWindowDatabase::new(WINDOW);
    let cell = Arc::new(SnapshotCell::new());
    let worker = RefreshWorker::spawn_pool(
        IncrementalMiner::new(config, 0),
        Arc::clone(&cell),
        pool_size,
    );
    let mut published = Vec::new();
    for op in ops {
        window.ingest(op.event()).unwrap();
        if matches!(op, Op::Watermark(_)) {
            worker.submit(RefreshJob {
                view: window.freeze(),
                budget: MiningBudget::unlimited(),
                min_support: None,
            });
        }
        published.extend(worker.drain_completed());
    }
    let outcome = worker.shutdown();
    assert!(outcome.miner.is_some(), "worker must join cleanly");
    published.extend(outcome.unreported);
    published
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Shadow replay: the pipelined path publishes, at every revision,
    /// exactly what the synchronous path publishes for the same events —
    /// patterns, supports, window bounds, and refresh accounting — at
    /// every shard-pool size (the single dedicated worker of PR 5 and the
    /// multi-worker pools alike).
    #[test]
    fn pipelined_snapshots_equal_synchronous(ops in ops()) {
        let config = MinerConfig::with_min_support(2);
        let sync = run_sync(&ops, config);
        for pool_size in [1usize, 2, 8] {
            let pipelined = run_pipelined(&ops, config, pool_size);
            prop_assert_eq!(sync.len(), pipelined.len(), "pool_size={}", pool_size);
            for (s, p) in sync.iter().zip(&pipelined) {
                prop_assert_eq!(s.revision, p.revision);
                prop_assert_eq!(s.watermark, p.watermark);
                prop_assert_eq!(s.window_start, p.window_start);
                prop_assert_eq!(s.sequences, p.sequences);
                prop_assert_eq!(s.result.patterns(), p.result.patterns());
                prop_assert_eq!(&s.refresh, &p.refresh);
            }
        }
    }

    /// Freezing is a point-in-time boundary: events ingested after a freeze
    /// never leak into that epoch's snapshot, and are never lost — they are
    /// covered by the *next* epoch.
    #[test]
    fn freeze_is_a_consistent_cut(ops in ops()) {
        let config = MinerConfig::with_min_support(1);
        let mut window = SlidingWindowDatabase::new(WINDOW);
        let cell = Arc::new(SnapshotCell::new());
        let worker = RefreshWorker::spawn(IncrementalMiner::new(config, 0), Arc::clone(&cell));
        let mut frozen_meta = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            window.ingest(op.event()).unwrap();
            if i % 7 == 3 {
                let view = window.freeze();
                frozen_meta.push((view.watermark(), view.sequences()));
                worker.submit(RefreshJob {
                    view,
                    budget: MiningBudget::unlimited(),
                    min_support: None,
                });
            }
        }
        let outcome = worker.shutdown();
        prop_assert!(outcome.miner.is_some());
        // Every published snapshot reflects its freeze point, not whatever
        // the live window had moved on to while it was mined.
        let mut all: Vec<_> = outcome.unreported;
        for (snapshot, (watermark, sequences)) in all.drain(..).zip(frozen_meta) {
            prop_assert_eq!(snapshot.watermark, watermark);
            prop_assert_eq!(snapshot.sequences, sequences);
        }
    }
}

/// High-rate ingestion against slow refreshes with the coalescing policy:
/// no event is lost or duplicated, the counters balance, and after the
/// final drain the result is exactly the batch miner's on the final window.
#[test]
fn stress_coalesced_ingestion_converges_to_batch() {
    // The window keeps ~5 rounds of intervals live and the arity cap
    // bounds each refresh, so the run is fast — but a refresh still costs
    // far more than one ingest, so triggers routinely arrive while the
    // worker is busy and must coalesce.
    let config = MinerConfig::with_min_support(2).max_arity(3);
    let mut window = SlidingWindowDatabase::new(50);
    let cell = Arc::new(SnapshotCell::new());
    let worker = RefreshWorker::spawn(IncrementalMiner::new(config, 0), Arc::clone(&cell));

    let symbols = ["a", "b", "c", "d"];
    let mut sent = 0u64;
    let mut triggers = 0u64;
    let mut accepted = 0u64;
    for round in 0i64..40 {
        for seq in 0..6u64 {
            for (i, sym) in symbols.iter().enumerate() {
                let start = round * 10 + i as i64;
                window
                    .ingest(StreamEvent::Interval {
                        sequence: seq,
                        symbol: (*sym).into(),
                        start,
                        end: start + 5,
                    })
                    .unwrap();
                sent += 1;
                if worker.is_busy() {
                    worker.note_events_during_refresh(1);
                }
            }
        }
        window
            .ingest(StreamEvent::Watermark(round * 10 + 9))
            .unwrap();
        sent += 1;
        triggers += 1;
        if worker.submit_or_coalesce(|| RefreshJob {
            min_support: None,
            view: window.freeze(),
            budget: MiningBudget::unlimited(),
        }) {
            accepted += 1;
        }
    }

    // Conservation: every event reached the window exactly once, whatever
    // the worker was doing at the time, and the window really slid.
    assert_eq!(window.stats().events, sent);
    assert!(window.stats().intervals_evicted > 0, "the window slid");

    let outcome = worker.shutdown();
    let miner = outcome.miner.expect("worker must join cleanly");
    let stats = outcome.stats;
    assert_eq!(stats.submitted_refreshes, accepted);
    assert_eq!(
        stats.completed_refreshes, accepted,
        "every accepted epoch completes exactly once"
    );
    assert_eq!(
        stats.coalesced_refreshes,
        triggers - accepted,
        "every trigger is either accepted or coalesced"
    );
    assert_eq!(outcome.unreported.len() as u64, accepted);

    // Revisions are consecutive: nothing published twice, nothing skipped.
    for (i, snapshot) in outcome.unreported.iter().enumerate() {
        assert_eq!(snapshot.revision, i as u64 + 1);
    }

    // A final synchronous refresh with the recovered miner folds in every
    // coalesced trigger's dirt; the result must be exactly the batch run.
    let mut miner = miner;
    let finale = miner.refresh(&mut window);
    let batch = TpMiner::new(config).mine(&window.snapshot_database());
    assert_eq!(finale.result.patterns(), batch.patterns());
    assert!(finale.result.is_exhaustive());
}

/// A stalled subscriber (bounded queue, never drained) must not delay
/// snapshot publication or ingest by a single event: the pipeline runs to
/// completion at full rate, the stalled subscriber just loses revisions —
/// counted, observable, and strictly its own problem.
#[test]
fn stalled_subscriber_never_delays_publication_or_ingest() {
    let config = MinerConfig::with_min_support(2).max_arity(3);
    let mut window = SlidingWindowDatabase::new(50);
    let cell = Arc::new(SnapshotCell::new());
    // Capacity-1 queue, never drained: every publication past the first
    // would block here if fan-out were blocking.
    let stalled = cell.subscribe(1);
    let worker = RefreshWorker::spawn_pool(IncrementalMiner::new(config, 0), Arc::clone(&cell), 2);

    let mut sent = 0u64;
    for round in 0i64..25 {
        for seq in 0..4u64 {
            for (i, sym) in ["a", "b", "c"].iter().enumerate() {
                let start = round * 10 + i as i64;
                window
                    .ingest(StreamEvent::Interval {
                        sequence: seq,
                        symbol: (*sym).into(),
                        start,
                        end: start + 5,
                    })
                    .unwrap();
                sent += 1;
            }
        }
        window
            .ingest(StreamEvent::Watermark(round * 10 + 9))
            .unwrap();
        sent += 1;
        // Blocking submission: every epoch is mined and *published* while
        // the subscriber stays stalled.
        worker.submit(RefreshJob {
            view: window.freeze(),
            budget: MiningBudget::unlimited(),
            min_support: None,
        });
    }
    // Ingest never stalled: every event reached the window.
    assert_eq!(window.stats().events, sent);

    let stats = worker.stats(window.watermark());
    assert_eq!(stats.subscribers, 1);
    assert_eq!(
        stats.subscriber_delivered, 1,
        "only the first fit the queue"
    );
    let outcome = worker.shutdown();
    assert!(outcome.miner.is_some());

    // Publication went through all 25 epochs regardless of the stall...
    assert_eq!(cell.load().revision, 25);
    // ...and the stalled subscriber lost exactly the ones it had no room
    // for, in order, with the loss counted.
    assert_eq!(stalled.delivered(), 1);
    assert_eq!(stalled.dropped(), 24);
    assert_eq!(stalled.try_next().map(|s| s.revision), Some(1));
    assert!(stalled.try_next().is_none());
}

/// The SIGINT / `--timeout` path: cancelling the budget token of an
/// in-flight background refresh stops it and `shutdown` joins the worker
/// without deadlock, keeping the last published snapshot valid.
#[test]
fn cancellation_mid_refresh_joins_cleanly() {
    let config = MinerConfig::with_min_support(1);
    let mut window = SlidingWindowDatabase::new(10_000);
    let cell = Arc::new(SnapshotCell::new());
    let worker = RefreshWorker::spawn(IncrementalMiner::new(config, 0), Arc::clone(&cell));

    // First, a small epoch that completes normally.
    window
        .ingest(StreamEvent::Interval {
            sequence: 0,
            symbol: "a".into(),
            start: 0,
            end: 5,
        })
        .unwrap();
    worker.submit(RefreshJob {
        view: window.freeze(),
        budget: MiningBudget::unlimited(),
        min_support: None,
    });

    // Then a deliberately heavy epoch whose token we cancel while it is
    // (potentially) in flight — exactly what the CLI's SIGINT handler does.
    for seq in 0..10u64 {
        for (i, sym) in ["a", "b", "c", "d", "e", "f"].iter().enumerate() {
            window
                .ingest(StreamEvent::Interval {
                    sequence: seq,
                    symbol: (*sym).into(),
                    start: i as i64,
                    end: i as i64 + 20,
                })
                .unwrap();
        }
    }
    let budget = MiningBudget::unlimited();
    let token = budget.token();
    worker.submit(RefreshJob {
        view: window.freeze(),
        budget,
        min_support: None,
    });
    token.cancel();

    let outcome = worker.shutdown();
    let miner = outcome.miner.expect("join must not deadlock after cancel");
    assert!(miner.revision() >= 1);

    // The published state is one of the two epochs; whichever it is, it is
    // coherent: either the completed small epoch or the cancelled heavy one
    // (sound partial result, exact supports).
    let last = cell.load();
    assert!(last.revision >= 1);
    match last.result.termination() {
        Termination::Complete | Termination::Cancelled => {}
        other => panic!("unexpected termination {other:?}"),
    }

    // After the handoff the miner recovers: an unbudgeted refresh restores
    // exhaustiveness and agrees with the batch miner.
    let mut miner = miner;
    let finale = miner.refresh(&mut window);
    assert!(finale.result.is_exhaustive());
    let batch = TpMiner::new(config).mine(&window.snapshot_database());
    assert_eq!(finale.result.patterns(), batch.patterns());
}
