//! End-to-end flows across all crates: generate → persist → reload → mine →
//! compress, on both synthetic and emulated-realistic data.

use baselines::HDfsMiner;
use datasets::{
    io, GestureConfig, GestureEmulator, LibraryConfig, LibraryEmulator, StockConfig, StockEmulator,
};
use synthgen::{QuestConfig, QuestGenerator, UncertaintyConfig};
use tpminer::{closed_patterns, MinerConfig, ProbabilisticConfig, ProbabilisticMiner, TpMiner};

#[test]
fn quest_generate_persist_reload_mine() {
    let db = QuestGenerator::new(QuestConfig::small().sequences(150).seed(5)).generate();

    // Text round trip preserves the database exactly.
    let text = io::write_database(&db);
    let reloaded = io::read_database(&text).expect("parse back");
    assert_eq!(db, reloaded);

    // Mining the reloaded copy gives identical results.
    let min_sup = db.absolute_support(0.10);
    let a = TpMiner::new(MinerConfig::with_min_support(min_sup)).mine(&db);
    let b = TpMiner::new(MinerConfig::with_min_support(min_sup)).mine(&reloaded);
    assert_eq!(a.patterns(), b.patterns());
    assert!(!a.is_empty(), "the generator must plant frequent patterns");
}

#[test]
fn uncertain_quest_round_trip_and_mining() {
    let udb = QuestGenerator::new(QuestConfig::small().sequences(80).seed(9))
        .generate_uncertain(&UncertaintyConfig::default());
    let text = io::write_uncertain_database(&udb);
    let reloaded = io::read_uncertain_database(&text).expect("parse back");
    assert_eq!(udb.len(), reloaded.len());
    assert_eq!(udb.total_intervals(), reloaded.total_intervals());

    let min_esup = 0.2 * udb.len() as f64;
    let a = ProbabilisticMiner::new(ProbabilisticConfig::with_min_expected_support(min_esup))
        .mine(&udb);
    let b = ProbabilisticMiner::new(ProbabilisticConfig::with_min_expected_support(min_esup))
        .mine(&reloaded);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.patterns().iter().zip(b.patterns()) {
        assert_eq!(x.pattern, y.pattern);
        assert!((x.expected_support - y.expected_support).abs() < 1e-9);
    }
}

#[test]
fn emulated_datasets_are_minable_and_agree_across_miners() {
    let library = LibraryEmulator::new(LibraryConfig {
        patrons: 120,
        ..Default::default()
    })
    .generate();
    let stock = StockEmulator::new(StockConfig {
        windows: 60,
        tickers: 3,
        days_per_window: 6,
        ..Default::default()
    })
    .generate();
    let gesture = GestureEmulator::new(GestureConfig {
        utterances: 120,
        ..Default::default()
    })
    .generate();

    for (name, db) in [("library", library), ("stock", stock), ("gesture", gesture)] {
        let min_sup = db.absolute_support(0.4);
        let config = MinerConfig::with_min_support(min_sup).max_arity(3);
        let tp = TpMiner::new(config).mine(&db);
        assert!(!tp.is_empty(), "{name}: nothing frequent at 40%?");
        let hdfs = HDfsMiner::new(min_sup).max_arity(3).mine(&db);
        assert_eq!(tp.patterns(), &hdfs.patterns[..], "{name}: miners disagree");
    }
}

#[test]
fn closed_patterns_compress_losslessly_on_synthetic_data() {
    let db = QuestGenerator::new(QuestConfig::small().sequences(200).seed(13)).generate();
    let result = TpMiner::new(MinerConfig::with_min_support(db.absolute_support(0.08))).mine(&db);
    let closed = closed_patterns(result.patterns());
    assert!(closed.len() <= result.len());
    // Lossless: every frequent pattern has a closed super-pattern of equal
    // support.
    for p in result.patterns() {
        assert!(
            closed
                .iter()
                .any(|c| c.support == p.support && p.pattern.is_subpattern_of(&c.pattern)),
            "{} lost by closure",
            p.pattern.display(db.symbols())
        );
    }
}

#[test]
fn gesture_corpus_contains_the_planted_grammar() {
    // The wh-question template plants "brow-raise contains sign-wh".
    let db = GestureEmulator::new(GestureConfig {
        utterances: 500,
        ..Default::default()
    })
    .generate();
    let result = TpMiner::new(MinerConfig::with_min_support(db.absolute_support(0.15))).mine(&db);
    let mut table = db.symbols().clone();
    let expected = interval_core::TemporalPattern::parse(
        "brow-raise+ | sign-wh+ | sign-wh- | brow-raise-",
        &mut table,
    )
    .unwrap();
    assert!(
        result.patterns().iter().any(|p| p.pattern == expected),
        "planted wh-question pattern not found; got:\n{}",
        result.render(db.symbols())
    );
}

#[test]
fn support_sweep_is_monotone() {
    let db = QuestGenerator::new(QuestConfig::small().sequences(300).seed(21)).generate();
    let mut last = usize::MAX;
    for rel in [0.05, 0.10, 0.20, 0.40] {
        let n = TpMiner::new(MinerConfig::with_min_support(db.absolute_support(rel)))
            .mine(&db)
            .len();
        assert!(n <= last, "raising support must shrink the result");
        last = n;
    }
}
