//! Property tests on the pattern data model: canonicalization, the
//! endpoint representation, display/parse, and the containment matcher.

mod common;

use interval_core::{
    matcher, AllenRelation, EndpointKind, EndpointSeq, IntervalSequence, SymbolTable,
    TemporalPattern,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arrangement_realization_round_trips(ivs in common::interval_set()) {
        let p = TemporalPattern::arrangement_of(&ivs);
        prop_assert_eq!(&TemporalPattern::arrangement_of(&p.realization()), &p);
        // The realization, as a sequence, contains its own pattern.
        prop_assert!(matcher::contains(&p.realization_sequence(), &p));
    }

    #[test]
    fn arrangement_is_permutation_invariant(ivs in common::interval_set(), seed in 0u64..64) {
        let p1 = TemporalPattern::arrangement_of(&ivs);
        // Deterministic pseudo-shuffle.
        let mut shuffled = ivs.clone();
        let n = shuffled.len();
        for i in 0..n {
            let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
            shuffled.swap(i, j);
        }
        prop_assert_eq!(TemporalPattern::arrangement_of(&shuffled), p1);
    }

    #[test]
    fn arrangement_is_time_shift_invariant(ivs in common::interval_set(), shift in -100i64..100) {
        let p1 = TemporalPattern::arrangement_of(&ivs);
        let shifted: Vec<_> = ivs
            .iter()
            .map(|iv| interval_core::EventInterval::new_unchecked(
                iv.symbol, iv.start + shift, iv.end + shift,
            ))
            .collect();
        prop_assert_eq!(TemporalPattern::arrangement_of(&shifted), p1);
    }

    #[test]
    fn display_parse_round_trips(ivs in common::interval_set()) {
        let mut table = SymbolTable::with_synthetic_symbols(3);
        let p = TemporalPattern::arrangement_of(&ivs);
        let text = p.display(&table).to_string();
        let parsed = TemporalPattern::parse(&text, &mut table).unwrap();
        prop_assert_eq!(parsed, p, "text was `{}`", text);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index symmetry (i, j) vs (j, i)
    fn relation_matrix_is_coherent(ivs in common::interval_set()) {
        let p = TemporalPattern::arrangement_of(&ivs);
        let m = p.relation_matrix();
        let direct: Vec<Vec<AllenRelation>> = ivs_matrix(&p);
        prop_assert_eq!(&m, &direct);
        for i in 0..m.len() {
            prop_assert_eq!(m[i][i], AllenRelation::Equals);
            for j in 0..m.len() {
                prop_assert_eq!(m[i][j], m[j][i].inverse());
            }
        }
    }

    #[test]
    fn endpoint_transform_is_consistent(ivs in common::interval_set()) {
        let seq = IntervalSequence::from_intervals(ivs);
        let es = EndpointSeq::from_sequence(&seq);
        // Twice as many endpoints as intervals, alternating per instance.
        prop_assert_eq!(es.endpoints().len(), 2 * seq.len());
        // Groups partition the endpoints with strictly increasing times.
        let mut last_time = i64::MIN;
        for (_, group) in es.groups() {
            prop_assert!(!group.is_empty());
            let t = group[0].time;
            prop_assert!(t > last_time);
            last_time = t;
            for e in group {
                prop_assert_eq!(e.time, t);
                // canonical order within the group: finishes first
                let _ = e;
            }
            let mut seen_start = false;
            for e in group {
                match e.kind {
                    EndpointKind::Start => seen_start = true,
                    EndpointKind::Finish => {
                        prop_assert!(!seen_start, "finish after start within group");
                    }
                }
            }
        }
        // Instance info agrees with the original intervals.
        for (idx, iv) in seq.iter().enumerate() {
            let info = es.instance(idx as u32);
            prop_assert_eq!(info.symbol, iv.symbol);
            prop_assert_eq!(info.start, iv.start);
            prop_assert_eq!(info.end, iv.end);
            prop_assert!(info.start_group < info.end_group);
        }
    }

    #[test]
    fn containment_is_reflexive_and_monotone(ivs in common::interval_set(), extra in common::interval_set()) {
        let p = TemporalPattern::arrangement_of(&ivs);
        let seq = IntervalSequence::from_intervals(ivs.clone());
        prop_assert!(matcher::contains(&seq, &p));
        // Adding intervals never destroys containment.
        let bigger: IntervalSequence = ivs.iter().chain(extra.iter()).copied().collect();
        prop_assert!(matcher::contains(&bigger, &p));
    }

    #[test]
    fn subpattern_relation_is_a_partial_order_sample(
        a in common::interval_set(),
        b in common::interval_set(),
    ) {
        let pa = TemporalPattern::arrangement_of(&a);
        let pb = TemporalPattern::arrangement_of(&b);
        // reflexive
        prop_assert!(pa.is_subpattern_of(&pa));
        // antisymmetric
        if pa.is_subpattern_of(&pb) && pb.is_subpattern_of(&pa) {
            prop_assert_eq!(&pa, &pb);
        }
        // consistent with arity
        if pa.is_subpattern_of(&pb) {
            prop_assert!(pa.arity() <= pb.arity());
        }
    }

    #[test]
    fn allen_relation_matches_endpoint_grouping(
        a in common::small_interval(1),
        b in common::small_interval(1),
    ) {
        use AllenRelation::*;
        let p = TemporalPattern::arrangement_of(&[a, b]);
        // map slots back: slot order is canonical; find which slot is `a`
        let rel = AllenRelation::relate(&a, &b);
        let groups = p.num_groups();
        match rel {
            Equals => prop_assert_eq!(groups, 2),
            Meets | MetBy | Starts | StartedBy | Finishes | FinishedBy => {
                prop_assert_eq!(groups, 3)
            }
            _ => prop_assert_eq!(groups, 4),
        }
    }
}

fn ivs_matrix(p: &TemporalPattern) -> Vec<Vec<AllenRelation>> {
    let r = p.realization();
    r.iter()
        .map(|a| r.iter().map(|b| AllenRelation::relate(a, b)).collect())
        .collect()
}
