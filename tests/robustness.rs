//! Robustness tests: adversarial inputs to parsers, degenerate databases,
//! and stress shapes designed to provoke worst-case behaviour in the search
//! (repeated identical intervals, deep chains, all-same-symbol data).

mod common;

use datasets::{csv, io};
use interval_core::{matcher, DatabaseBuilder, SymbolTable, TemporalPattern};
use proptest::prelude::*;
use tpminer::{MinerConfig, TpMiner};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pattern_parser_never_panics(text in "\\PC{0,40}") {
        let mut table = SymbolTable::new();
        let _ = TemporalPattern::parse(&text, &mut table);
    }

    #[test]
    fn io_parser_never_panics(text in "\\PC{0,80}") {
        let _ = io::read_database(&text);
        let _ = io::read_uncertain_database(&text);
        let _ = csv::read_long_csv(&text);
        let _ = csv::read_long_csv_uncertain(&text);
    }

    #[test]
    fn structured_garbage_lines_error_not_panic(
        name in "[a-z]{1,4}",
        a in -5i64..5,
        b in -5i64..5,
        junk in "[ ;,0-9a-z#+|-]{0,20}",
    ) {
        let line = format!("{name} {a} {b}; {junk}");
        let _ = io::read_database(&line);
        let line = format!("s,{name},{a},{b}\n{junk}");
        let _ = csv::read_long_csv(&line);
    }
}

#[test]
fn identical_intervals_stress_frontier_dedup() {
    // 12 byte-identical intervals per sequence: embeddings are maximally
    // interchangeable; the dedup must keep the frontier collapsed.
    let mut b = DatabaseBuilder::new();
    for _ in 0..4 {
        let mut s = b.sequence();
        for _ in 0..12 {
            s = s.interval("A", 0, 10);
        }
    }
    let db = b.build();
    let result = TpMiner::new(MinerConfig::with_min_support(4).max_arity(3)).mine(&db);
    // Only "k equal A's" patterns exist, one per arity.
    assert_eq!(result.len(), 3);
    for fp in result.patterns() {
        assert_eq!(fp.support, 4);
        assert_eq!(matcher::support(&db, &fp.pattern), 4);
    }
    assert_eq!(result.stats().frontier_cap_hits, 0);
}

#[test]
fn long_chain_sequences_mine_exactly() {
    // One long before-chain per sequence; patterns are sub-chains.
    let mut b = DatabaseBuilder::new();
    for _ in 0..3 {
        let mut s = b.sequence();
        for i in 0..10i64 {
            s = s.interval("A", 3 * i, 3 * i + 2);
        }
    }
    let db = b.build();
    let result = TpMiner::new(MinerConfig::with_min_support(3).max_arity(4)).mine(&db);
    // Sub-chains of length 1..=4: exactly one canonical pattern per arity.
    assert_eq!(result.len(), 4);
    for fp in result.patterns() {
        assert_eq!(fp.support, 3);
    }
}

#[test]
fn nested_onion_sequences() {
    // Perfectly nested intervals (an onion): containment chains dominate.
    let mut b = DatabaseBuilder::new();
    for _ in 0..2 {
        let mut s = b.sequence();
        for i in 0..6i64 {
            s = s.interval("A", i, 20 - i);
        }
    }
    let db = b.build();
    let result = TpMiner::new(MinerConfig::with_min_support(2).max_arity(3)).mine(&db);
    for fp in result.patterns() {
        assert_eq!(matcher::support(&db, &fp.pattern), fp.support);
    }
    // The 3-onion pattern (A contains A contains A) must be found.
    let mut t = db.symbols().clone();
    let onion3 = TemporalPattern::parse("A+#0 | A+#1 | A+#2 | A-#2 | A-#1 | A-#0", &mut t).unwrap();
    assert!(result.patterns().iter().any(|p| p.pattern == onion3));
}

#[test]
fn single_sequence_database() {
    let mut b = DatabaseBuilder::new();
    b.sequence().interval("A", 0, 5).interval("B", 2, 8);
    let db = b.build();
    let result = TpMiner::new(MinerConfig::with_min_support(1)).mine(&db);
    assert_eq!(result.len(), 3);
    let stricter = TpMiner::new(MinerConfig::with_min_support(2)).mine(&db);
    assert!(stricter.is_empty());
}

#[test]
fn sequences_with_extreme_timestamps() {
    let mut b = DatabaseBuilder::new();
    b.sequence()
        .interval("A", i64::MIN / 4, i64::MAX / 4)
        .interval("B", -1_000_000_000_000, 1_000_000_000_000);
    b.sequence().interval("A", -5, 5).interval("B", -1, 1);
    let db = b.build();
    let result = TpMiner::new(MinerConfig::with_min_support(2)).mine(&db);
    let mut t = db.symbols().clone();
    let contains = TemporalPattern::parse("A+ | B+ | B- | A-", &mut t).unwrap();
    assert!(result.patterns().iter().any(|p| p.pattern == contains));
}

#[test]
fn all_sequences_empty() {
    let mut b = DatabaseBuilder::new();
    for _ in 0..5 {
        b.sequence();
    }
    let db = b.build();
    assert!(TpMiner::new(MinerConfig::with_min_support(1))
        .mine(&db)
        .is_empty());
}
