//! Robustness tests: adversarial inputs to parsers, degenerate databases,
//! stress shapes designed to provoke worst-case behaviour in the search
//! (repeated identical intervals, deep chains, all-same-symbol data), and
//! degraded operation — budget truncation, cancellation, worker faults —
//! where partial results must stay *sound*: every reported support exact,
//! only completeness lost.

mod common;

use datasets::{csv, io};
use interval_core::budget::DEFAULT_CHECK_STRIDE;
use interval_core::{matcher, DatabaseBuilder, SymbolTable, TemporalPattern};
use proptest::prelude::*;
use tpminer::{
    CancellationToken, MinerConfig, MiningBudget, ParallelTpMiner, Termination, TpMiner,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pattern_parser_never_panics(text in "\\PC{0,40}") {
        let mut table = SymbolTable::new();
        let _ = TemporalPattern::parse(&text, &mut table);
    }

    #[test]
    fn io_parser_never_panics(text in "\\PC{0,80}") {
        let _ = io::read_database(&text);
        let _ = io::read_uncertain_database(&text);
        let _ = csv::read_long_csv(&text);
        let _ = csv::read_long_csv_uncertain(&text);
    }

    #[test]
    fn structured_garbage_lines_error_not_panic(
        name in "[a-z]{1,4}",
        a in -5i64..5,
        b in -5i64..5,
        junk in "[ ;,0-9a-z#+|-]{0,20}",
    ) {
        let line = format!("{name} {a} {b}; {junk}");
        let _ = io::read_database(&line);
        let line = format!("s,{name},{a},{b}\n{junk}");
        let _ = csv::read_long_csv(&line);
    }
}

#[test]
fn identical_intervals_stress_frontier_dedup() {
    // 12 byte-identical intervals per sequence: embeddings are maximally
    // interchangeable; the dedup must keep the frontier collapsed.
    let mut b = DatabaseBuilder::new();
    for _ in 0..4 {
        let mut s = b.sequence();
        for _ in 0..12 {
            s = s.interval("A", 0, 10);
        }
    }
    let db = b.build();
    let result = TpMiner::new(MinerConfig::with_min_support(4).max_arity(3)).mine(&db);
    // Only "k equal A's" patterns exist, one per arity.
    assert_eq!(result.len(), 3);
    for fp in result.patterns() {
        assert_eq!(fp.support, 4);
        assert_eq!(matcher::support(&db, &fp.pattern), 4);
    }
    assert_eq!(result.stats().frontier_cap_hits, 0);
}

#[test]
fn long_chain_sequences_mine_exactly() {
    // One long before-chain per sequence; patterns are sub-chains.
    let mut b = DatabaseBuilder::new();
    for _ in 0..3 {
        let mut s = b.sequence();
        for i in 0..10i64 {
            s = s.interval("A", 3 * i, 3 * i + 2);
        }
    }
    let db = b.build();
    let result = TpMiner::new(MinerConfig::with_min_support(3).max_arity(4)).mine(&db);
    // Sub-chains of length 1..=4: exactly one canonical pattern per arity.
    assert_eq!(result.len(), 4);
    for fp in result.patterns() {
        assert_eq!(fp.support, 3);
    }
}

#[test]
fn nested_onion_sequences() {
    // Perfectly nested intervals (an onion): containment chains dominate.
    let mut b = DatabaseBuilder::new();
    for _ in 0..2 {
        let mut s = b.sequence();
        for i in 0..6i64 {
            s = s.interval("A", i, 20 - i);
        }
    }
    let db = b.build();
    let result = TpMiner::new(MinerConfig::with_min_support(2).max_arity(3)).mine(&db);
    for fp in result.patterns() {
        assert_eq!(matcher::support(&db, &fp.pattern), fp.support);
    }
    // The 3-onion pattern (A contains A contains A) must be found.
    let mut t = db.symbols().clone();
    let onion3 = TemporalPattern::parse("A+#0 | A+#1 | A+#2 | A-#2 | A-#1 | A-#0", &mut t).unwrap();
    assert!(result.patterns().iter().any(|p| p.pattern == onion3));
}

#[test]
fn single_sequence_database() {
    let mut b = DatabaseBuilder::new();
    b.sequence().interval("A", 0, 5).interval("B", 2, 8);
    let db = b.build();
    let result = TpMiner::new(MinerConfig::with_min_support(1)).mine(&db);
    assert_eq!(result.len(), 3);
    let stricter = TpMiner::new(MinerConfig::with_min_support(2)).mine(&db);
    assert!(stricter.is_empty());
}

#[test]
fn sequences_with_extreme_timestamps() {
    let mut b = DatabaseBuilder::new();
    b.sequence()
        .interval("A", i64::MIN / 4, i64::MAX / 4)
        .interval("B", -1_000_000_000_000, 1_000_000_000_000);
    b.sequence().interval("A", -5, 5).interval("B", -1, 1);
    let db = b.build();
    let result = TpMiner::new(MinerConfig::with_min_support(2)).mine(&db);
    let mut t = db.symbols().clone();
    let contains = TemporalPattern::parse("A+ | B+ | B- | A-", &mut t).unwrap();
    assert!(result.patterns().iter().any(|p| p.pattern == contains));
}

#[test]
fn all_sequences_empty() {
    let mut b = DatabaseBuilder::new();
    for _ in 0..5 {
        b.sequence();
    }
    let db = b.build();
    assert!(TpMiner::new(MinerConfig::with_min_support(1))
        .mine(&db)
        .is_empty());
}

// ------------------------------------------------- degraded operation ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Soundness under truncation: a budget-limited run returns a subset of
    /// the unbudgeted run's patterns, each with the identical (exact)
    /// support — a budget may cost completeness, never correctness.
    #[test]
    fn budget_truncated_results_are_sound_subsets(
        db in common::small_database(),
        max_nodes in 0u64..64,
    ) {
        let config = MinerConfig::with_min_support(1);
        let full = TpMiner::new(config).mine(&db);
        let budget = MiningBudget::unlimited().with_max_nodes(max_nodes);
        let partial = TpMiner::new(config).with_budget(budget).mine(&db);

        prop_assert!(partial.len() <= full.len());
        for fp in partial.patterns() {
            prop_assert_eq!(full.support_of(&fp.pattern), Some(fp.support));
        }
        // Node accounting never overshoots the cap by more than the
        // check stride (in fact nodes are charged before being counted,
        // so the cap itself holds).
        prop_assert!(partial.stats().nodes_explored <= max_nodes + DEFAULT_CHECK_STRIDE);
        // The completeness claim is truthful in both directions.
        if partial.is_exhaustive() {
            prop_assert_eq!(partial.patterns(), full.patterns());
        } else {
            prop_assert_eq!(partial.termination(), &Termination::NodeBudgetExceeded);
        }
    }

    /// The same invariants hold when the budget is shared by parallel
    /// workers: the cap bounds the workers' total, and whatever survives
    /// carries exact supports.
    #[test]
    fn parallel_budget_truncation_is_sound(
        db in common::small_database(),
        max_nodes in 0u64..32,
        threads in 1usize..4,
    ) {
        let config = MinerConfig::with_min_support(1);
        let full = TpMiner::new(config).mine(&db);
        let budget = MiningBudget::unlimited().with_max_nodes(max_nodes);
        let partial = ParallelTpMiner::new(config, threads)
            .with_budget(budget)
            .mine(&db);
        for fp in partial.patterns() {
            prop_assert_eq!(full.support_of(&fp.pattern), Some(fp.support));
        }
        prop_assert!(partial.stats().nodes_explored <= max_nodes + DEFAULT_CHECK_STRIDE);
    }
}

#[test]
fn expired_deadline_stops_before_any_expansion() {
    let mut b = DatabaseBuilder::new();
    for i in 0..6i64 {
        b.sequence()
            .interval("A", i, i + 5)
            .interval("B", i + 2, i + 7)
            .interval("C", i + 4, i + 9);
    }
    let db = b.build();
    let budget = MiningBudget::unlimited().with_timeout(std::time::Duration::ZERO);
    let result = TpMiner::new(MinerConfig::with_min_support(1))
        .with_budget(budget)
        .mine(&db);
    // The deadline is re-checked on the very first node, not only after a
    // full stride, so an already-expired deadline does no search work.
    assert_eq!(result.termination(), &Termination::DeadlineExceeded);
    assert_eq!(result.stats().nodes_explored, 0);
    assert!(result.is_empty());
    assert!(!result.is_exhaustive());
}

#[test]
fn cancellation_token_stops_sequential_and_parallel_miners() {
    let mut b = DatabaseBuilder::new();
    for i in 0..4i64 {
        b.sequence()
            .interval("A", i, i + 3)
            .interval("B", i + 1, i + 4);
    }
    let db = b.build();
    let config = MinerConfig::with_min_support(1);

    let token = CancellationToken::new();
    token.cancel();
    let seq = TpMiner::new(config)
        .with_budget(MiningBudget::unlimited().with_token(token.clone()))
        .mine(&db);
    assert_eq!(seq.termination(), &Termination::Cancelled);
    assert!(seq.is_empty());

    let par = ParallelTpMiner::new(config, 2)
        .with_budget(MiningBudget::unlimited().with_token(token))
        .mine(&db);
    assert_eq!(par.termination(), &Termination::Cancelled);
    assert!(par.is_empty());
}

/// End-to-end panic isolation through the public API, with the
/// `fault-injection` feature enabled by this package's dev-dependency: a
/// poisoned root loses its partition, every other root's patterns survive
/// with exact supports, and the process does not abort.
#[test]
fn poisoned_worker_degrades_gracefully_not_fatally() {
    let mut b = DatabaseBuilder::new();
    for i in 0..5i64 {
        b.sequence()
            .interval("A", i, i + 4)
            .interval("B", i + 2, i + 6)
            .interval("C", i + 5, i + 8);
    }
    let db = b.build();
    let config = MinerConfig::with_min_support(1);
    let full = TpMiner::new(config).mine(&db);
    let poisoned = db.symbols().lookup("B").expect("B is interned");

    let result = ParallelTpMiner::new(config, 8)
        .poison_root(poisoned, 1)
        .mine(&db);

    match result.termination() {
        Termination::WorkerFailed { roots } => assert_eq!(roots, &[poisoned]),
        other => panic!("expected WorkerFailed, got {other:?}"),
    }
    assert!(!result.is_exhaustive());
    assert!(!result.is_empty(), "surviving partitions must be reported");
    for fp in result.patterns() {
        assert_eq!(full.support_of(&fp.pattern), Some(fp.support));
    }
    // The deterministic serialization keeps the failure visible.
    let json = serde_json::to_string(result.termination()).unwrap();
    let back: Termination = serde_json::from_str(&json).unwrap();
    assert_eq!(&back, result.termination());
}
