//! Crash-safety properties of the streaming durability tier, end to end:
//!
//! - **recovery-by-replay at every crash point**: a journaled stream is
//!   crashed (via the fault-injecting filesystem) after an arbitrary
//!   number of bytes, and the replayed window must be bit-identical — same
//!   contents, support counts, watermark, ingest counters, and *mined
//!   snapshot* — to a shadow run over the events whose frames fully
//!   reached the disk;
//! - **fsync exhaustion degrades, never truncates**: when the disk refuses
//!   every fsync, the journal latches its sticky degraded flag, the
//!   pipeline surfaces it in [`stream::PipelineStats`], and the in-memory
//!   window still holds every ingested event;
//! - **committed fixtures**: real WAL files with a torn tail and with a
//!   flipped bit (under `tests/fixtures/wal/`) recover with exactly the
//!   documented semantics, so the on-disk format cannot drift silently.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use durability::{
    frame_record, FaultPlan, FaultyFs, FsyncPolicy, RetryPolicy, WalOptions, WalWriter,
};
use interval_core::{StreamEvent, Time};
use proptest::prelude::*;
use stream::{
    durable, IncrementalMiner, Journal, RefreshWorker, SlidingWindowDatabase, SnapshotCell,
};
use tpminer::MinerConfig;

/// The sliding-window length every test here uses.
const WINDOW: Time = 20;

fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ptpminer-durability-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One step of a randomly generated ingest run (mirrors
/// `streaming_properties.rs`).
#[derive(Debug, Clone)]
enum Op {
    Interval {
        sequence: u64,
        symbol: u32,
        start: Time,
        end: Time,
    },
    Watermark(Time),
}

impl Op {
    fn event(&self) -> StreamEvent {
        match *self {
            Op::Interval {
                sequence,
                symbol,
                start,
                end,
            } => StreamEvent::Interval {
                sequence,
                symbol: format!("s{symbol}"),
                start,
                end,
            },
            Op::Watermark(at) => StreamEvent::Watermark(at),
        }
    }
}

fn op() -> impl Strategy<Value = Op> {
    (0u32..4, 0u64..4, 0u32..4, 0i64..50, 1i64..8).prop_map(|(kind, sequence, symbol, t, len)| {
        if kind == 0 {
            Op::Watermark(t + len)
        } else {
            Op::Interval {
                sequence,
                symbol,
                start: t,
                end: t + len,
            }
        }
    })
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(op(), 1..40)
}

/// The mined snapshot of a window, rendered — the strongest equality we can
/// assert without reaching into miner internals.
fn mined(window: &mut SlidingWindowDatabase) -> String {
    let mut miner = IncrementalMiner::new(MinerConfig::with_min_support(2), 0);
    miner.refresh(window).render()
}

/// The window's materialized contents in a canonical, name-keyed shape
/// (symbol-table internals use hash maps, so raw `Debug` output is not
/// order-stable across instances).
fn window_contents(window: &SlidingWindowDatabase) -> Vec<Vec<(String, Time, Time)>> {
    let db = window.snapshot_database();
    db.sequences()
        .iter()
        .map(|seq| {
            let mut intervals: Vec<(String, Time, Time)> = seq
                .intervals()
                .iter()
                .map(|iv| (db.symbols().name(iv.symbol).to_owned(), iv.start, iv.end))
                .collect();
            intervals.sort();
            intervals
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For *every* crash offset: journal a run onto a disk that dies after
    /// `crash_after` bytes, replay the surviving log, and require the
    /// recovered window to match a shadow ingest of exactly the events
    /// whose frames fully reached the disk. `FsyncPolicy::Always` writes
    /// frame-by-frame (and the segment never rotates), so the durable file
    /// is byte-for-byte the first `crash_after` bytes of the framed run —
    /// the durable prefix is computable in the test, not guessed.
    #[test]
    fn replay_at_any_crash_point_matches_the_uncrashed_shadow(
        run in ops(),
        frac in 0.0f64..1.0,
    ) {
        let events: Vec<StreamEvent> = run.iter().map(Op::event).collect();

        // Frame the whole run once to learn where each record's bytes end.
        let mut frame_ends = Vec::with_capacity(events.len());
        let mut framed = Vec::new();
        for event in &events {
            frame_record(event, &mut framed);
            frame_ends.push(framed.len() as u64);
        }
        let total = framed.len() as u64;
        let crash_after = ((frac * total as f64) as u64).min(total);
        // Events whose final byte landed on disk before it died.
        let durable = frame_ends.iter().filter(|&&end| end <= crash_after).count();

        let dir = temp_dir("crash");
        let fs = FaultyFs::new(FaultPlan {
            crash_after_bytes: Some(crash_after),
            ..FaultPlan::default()
        });
        let mut opts = WalOptions::new(Time::MAX);
        opts.policy = FsyncPolicy::Always;
        opts.retry = RetryPolicy::none();
        let mut journal = Journal::with_wal(WalWriter::open_with(fs, &dir, opts).unwrap());

        let mut live = SlidingWindowDatabase::new(WINDOW);
        for event in &events {
            journal.append(event); // may degrade mid-run; ingestion continues
            live.ingest(event.clone()).unwrap();
        }
        prop_assert_eq!(live.stats().events, events.len() as u64);

        // Recover from the torn log and shadow-ingest the durable prefix.
        let outcome = durable::replay(&dir, WINDOW).unwrap();
        prop_assert!(outcome.report.is_clean(), "a torn tail is not corruption");
        prop_assert_eq!(outcome.records_rejected, 0);
        prop_assert_eq!(outcome.report.records_replayed, durable as u64);
        let tail_start = if durable == 0 { 0 } else { frame_ends[durable - 1] };
        prop_assert_eq!(outcome.report.torn_tail_bytes, crash_after - tail_start);

        let mut shadow = SlidingWindowDatabase::new(WINDOW);
        for event in &events[..durable] {
            shadow.ingest(event.clone()).unwrap();
        }

        let mut recovered = outcome.window;
        prop_assert_eq!(recovered.watermark(), shadow.watermark());
        prop_assert_eq!(recovered.len(), shadow.len());
        prop_assert_eq!(recovered.open_intervals(), shadow.open_intervals());
        prop_assert_eq!(
            recovered.support_counts().collect::<Vec<_>>(),
            shadow.support_counts().collect::<Vec<_>>()
        );
        prop_assert_eq!(recovered.stats(), shadow.stats());
        prop_assert_eq!(window_contents(&recovered), window_contents(&shadow));
        prop_assert_eq!(mined(&mut recovered), mined(&mut shadow));

        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn fsync_exhaustion_degrades_the_pipeline_without_losing_events() {
    let dir = temp_dir("fsync");
    let fs = FaultyFs::new(FaultPlan {
        fail_syncs: u32::MAX,
        ..FaultPlan::default()
    });
    let mut opts = WalOptions::new(WINDOW);
    opts.policy = FsyncPolicy::Always; // every append must fsync — and fail
    opts.retry = RetryPolicy::none();
    let mut journal = Journal::with_wal(WalWriter::open_with(fs, &dir, opts).unwrap());

    let mut window = SlidingWindowDatabase::new(WINDOW);
    for seq in 0..6u64 {
        let event = StreamEvent::Interval {
            sequence: seq,
            symbol: "fever".into(),
            start: seq as Time,
            end: seq as Time + 4,
        };
        journal.append(&event);
        window.ingest(event).unwrap();
    }
    window.ingest(StreamEvent::Watermark(10)).unwrap();

    // Degraded on the very first exhausted fsync; nothing in memory lost.
    assert!(journal.is_degraded());
    assert_eq!(window.len(), 6, "every sequence survives in memory");
    assert_eq!(window.stats().events, 7);

    // The pipelined shutdown path surfaces the degradation (and the absent
    // flush) through the worker's stats — what the CLI prints and maps to
    // exit code 5.
    let miner = IncrementalMiner::new(MinerConfig::with_min_support(2), 0);
    let worker = RefreshWorker::spawn(miner, Arc::new(SnapshotCell::new()));
    let outcome = worker.shutdown_flushing(&mut journal);
    assert!(
        outcome.stats.wal_degraded,
        "sticky flag must reach the stats"
    );
    assert_eq!(
        outcome.stats.wal_flushes, 0,
        "a degraded flush must not count"
    );
    assert_eq!(journal.stats().flushes, 0);

    std::fs::remove_dir_all(&dir).ok();
}

/// The healthy counterpart: a clean shutdown flush is counted.
#[test]
fn pipeline_shutdown_flushes_the_journal() {
    let dir = temp_dir("clean-shutdown");
    let mut journal = Journal::open(&dir, WINDOW, FsyncPolicy::Epoch).unwrap();
    let mut window = SlidingWindowDatabase::new(WINDOW);
    let event = StreamEvent::Interval {
        sequence: 1,
        symbol: "fever".into(),
        start: 0,
        end: 5,
    };
    journal.append(&event);
    window.ingest(event).unwrap();

    let miner = IncrementalMiner::new(MinerConfig::with_min_support(1), 0);
    let worker = RefreshWorker::spawn(miner, Arc::new(SnapshotCell::new()));
    let outcome = worker.shutdown_flushing(&mut journal);
    assert!(!outcome.stats.wal_degraded);
    assert_eq!(
        outcome.stats.wal_flushes, 1,
        "the shutdown flush is recorded"
    );

    // And the flushed log replays the event.
    let replayed = durable::replay(&dir, WINDOW).unwrap();
    assert!(replayed.report.is_clean());
    assert_eq!(replayed.window.len(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/wal")
        .join(name)
}

/// The committed torn-tail fixture: three clean frames, then 21 bytes of a
/// frame that never finished. A torn tail is the normal crash signature —
/// recovery truncates it and reports the log clean.
#[test]
fn committed_torn_tail_fixture_recovers_clean() {
    let outcome = durable::replay(fixture("torn_tail"), WINDOW).unwrap();
    assert!(outcome.report.is_clean());
    assert_eq!(outcome.report.records_replayed, 3);
    assert_eq!(outcome.report.torn_tail_bytes, 21);
    assert_eq!(outcome.report.records_dropped, 0);
    assert_eq!(outcome.records_rejected, 0);
    assert_eq!(outcome.window.watermark(), Some(12));
    assert_eq!(outcome.window.len(), 2, "sequences 1 and 2 replayed");
}

/// The committed bit-flip fixture: the second frame's payload has one bit
/// flipped, so its checksum no longer matches. Recovery must stop at the
/// last trustworthy record and account for everything it refused.
#[test]
fn committed_bit_flip_fixture_stops_at_corruption() {
    let outcome = durable::replay(fixture("bit_flip"), WINDOW).unwrap();
    assert!(!outcome.report.is_clean());
    assert_eq!(outcome.report.records_replayed, 1);
    // The flipped frame itself is accounted in `bytes_dropped` (its payload
    // is untrustworthy); `records_dropped` counts the still-well-formed
    // frames the scanner resynced past after it.
    assert_eq!(
        outcome.report.records_dropped, 1,
        "the frame after the flipped one"
    );
    assert_eq!(
        outcome.report.bytes_dropped, 62,
        "flipped frame + everything after"
    );
    let corruption = outcome.report.corruption.as_ref().expect("flip detected");
    assert_eq!(corruption.offset, 46, "first byte of the flipped frame");
    assert!(
        corruption.reason.contains("CRC mismatch"),
        "{}",
        corruption.reason
    );
    assert_eq!(outcome.window.len(), 1, "only the intact prefix is trusted");
    assert_eq!(
        outcome.window.watermark(),
        None,
        "the dropped watermark never lands"
    );
}
