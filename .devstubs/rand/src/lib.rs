//! Offline stand-in for `rand` 0.8: the trait surface the workspace uses,
//! backed by a real (but not ChaCha-compatible) splitmix64 generator so
//! randomized tests still run.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the stub's `Standard` distribution).
pub trait StandardSample: Sized {
    fn from_u64(raw: u64) -> Self;
}

impl StandardSample for f64 {
    fn from_u64(raw: u64) -> Self {
        (raw >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for f32 {
    fn from_u64(raw: u64) -> Self {
        (raw >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl StandardSample for u64 {
    fn from_u64(raw: u64) -> Self {
        raw
    }
}

impl StandardSample for u32 {
    fn from_u64(raw: u64) -> Self {
        (raw >> 32) as u32
    }
}

impl StandardSample for bool {
    fn from_u64(raw: u64) -> Self {
        raw & 1 == 1
    }
}

/// Types usable with [`Rng::gen_range`]. Mirroring the real crate's
/// generic-over-`T` range impls keeps integer-literal inference intact.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self;
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64::from_u64(rng.next_u64()) * (hi - lo)
    }
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self {
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::from_u64(rng.next_u64()) * (hi - lo)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample(self, rng: &mut impl RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Splitmix64 small RNG.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}
