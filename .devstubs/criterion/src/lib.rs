//! Offline stand-in for `criterion`: a miniature wall-clock harness with the
//! same API shape. Reports min/median/max per benchmark to stdout. No
//! statistics, baselines, or HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warmup
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(label: &str, samples: &mut Vec<Duration>) {
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    println!(
        "{label:<48} min {:>12?}  median {:>12?}  max {:>12?}  ({} samples)",
        samples[0],
        median,
        samples[samples.len() - 1],
        samples.len()
    );
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(
            &format!("{}/{}", self.name, id),
            &mut bencher.samples,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        report(
            &format!("{}/{}", self.name, id),
            &mut bencher.samples,
        );
        self
    }

    pub fn finish(self) {}
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut bencher);
        report(name, &mut bencher.samples);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
