//! Offline stand-in for `serde_derive`: accepts the derives (and `#[serde]`
//! helper attributes) but emits nothing — the `serde` stub's blanket impls
//! satisfy every bound.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
