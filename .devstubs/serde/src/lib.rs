//! Offline stand-in for `serde`: real trait shapes, panicking blanket impls.
//! Lets the workspace type-check (and run non-serde tests) without network.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub trait Serializer: Sized {
    type Ok;
    type Error: std::fmt::Display + std::fmt::Debug;
}

pub trait Deserializer<'de>: Sized {
    type Error: std::fmt::Display + std::fmt::Debug;
}

pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

impl<T: ?Sized> Serialize for T {
    fn serialize<S: Serializer>(&self, _serializer: S) -> Result<S::Ok, S::Error> {
        unimplemented!("serde stub: serialization is unavailable offline")
    }
}

impl<'de, T> Deserialize<'de> for T {
    fn deserialize<D: Deserializer<'de>>(_deserializer: D) -> Result<Self, D::Error> {
        unimplemented!("serde stub: deserialization is unavailable offline")
    }
}

pub mod de {
    pub use crate::{Deserialize, Deserializer};
    pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
    impl<T: for<'de> super::Deserialize<'de>> DeserializeOwned for T {}
}

pub mod ser {
    pub use crate::{Serialize, Serializer};
}
