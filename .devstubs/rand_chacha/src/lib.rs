//! Offline stand-in for `rand_chacha`: `ChaCha8Rng` is a splitmix64
//! generator (deterministic per seed, but NOT ChaCha-compatible — golden
//! values derived from real ChaCha output will differ).

pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    inner: rand::rngs::SmallRng,
}

impl rand::SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        Self {
            inner: rand::SeedableRng::seed_from_u64(seed),
        }
    }
}

impl rand::RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
