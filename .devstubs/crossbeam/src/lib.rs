//! Offline stand-in for `crossbeam`: scoped "threads" that run eagerly on
//! the calling thread with panics contained at the (already computed) join.
//! Semantics match real scoped threads for deterministic workloads; there is
//! no actual parallelism.

pub mod thread {
    use std::marker::PhantomData;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    pub struct Scope<'env> {
        _marker: PhantomData<&'env ()>,
    }

    pub struct ScopedJoinHandle<T> {
        outcome: Result<T>,
    }

    impl<T> ScopedJoinHandle<T> {
        pub fn join(self) -> Result<T> {
            self.outcome
        }
    }

    impl<'env> Scope<'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<T>
        where
            F: FnOnce(&Scope<'env>) -> T + Send + 'env,
            T: Send + 'env,
        {
            ScopedJoinHandle {
                outcome: catch_unwind(AssertUnwindSafe(|| f(self))),
            }
        }
    }

    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        let scope = Scope {
            _marker: PhantomData,
        };
        Ok(f(&scope))
    }
}
