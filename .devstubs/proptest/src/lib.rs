//! Offline stand-in for `proptest`: a miniature property-testing runner
//! covering the API subset this workspace uses (`proptest!`, `prop_assert*`,
//! range/tuple/vec/prop_map strategies, string strategies by length). No
//! shrinking; failures report the case number so they can be re-run.

pub mod test_runner {
    /// Runner configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Splitmix64 deterministic case generator.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(case: u32) -> Self {
            Self {
                state: 0x5eed_0000_0000_0000 ^ u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }
    }

    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end as i128 - start as i128) as u64 + 1;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    /// String strategies: the pattern is treated as "any printable ASCII",
    /// honoring only a trailing `{lo,hi}` length bound.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_length_bounds(self).unwrap_or((0, 16));
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| char::from(0x20 + (rng.below(0x5f)) as u8))
                .collect()
        }
    }

    fn parse_length_bounds(pattern: &str) -> Option<(usize, usize)> {
        let body = pattern.strip_suffix('}')?;
        let open = body.rfind('{')?;
        let mut parts = body[open + 1..].splitn(2, ',');
        let lo = parts.next()?.trim().parse().ok()?;
        let hi = parts.next()?.trim().parse().ok()?;
        Some((lo, hi))
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end);
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ [$crate::test_runner::ProptestConfig::default()] $($rest)* }
    };
}

#[macro_export]
macro_rules! __proptest_impl {
    ([$cfg:expr] $( $(#[$attr:meta])* fn $name:ident $args:tt $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cases: u32 = ($cfg).cases;
                for case in 0..cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(case);
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        $crate::__proptest_case!(rng, $args, $body);
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "[proptest stub] {} case {case}/{cases}: {message}",
                            stringify!($name)
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident, ($($arg:pat in $strat:expr),* $(,)?), $body:block) => {
        (|| {
            $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut $rng);)*
            $body
            ::std::result::Result::Ok(())
        })()
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} (left: {left:?}, right: {right:?})",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both: {left:?})",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
}
