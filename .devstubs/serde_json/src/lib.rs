//! Offline stand-in for `serde_json`: the `Value`/`Map` shells and panicking
//! conversion entry points, enough to type-check callers.

use std::fmt;

#[derive(Debug)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

#[derive(Debug, Clone, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.entries.push((key, value));
        None
    }
}

#[derive(Debug, Clone, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "null")
    }
}

pub fn to_string<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    unimplemented!("serde_json stub: serialization is unavailable offline")
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    unimplemented!("serde_json stub: serialization is unavailable offline")
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    unimplemented!("serde_json stub: deserialization is unavailable offline")
}

/// Accepts the `json!` DSL and yields a placeholder [`Value`]; the interior
/// expressions are discarded (not type-checked).
#[macro_export]
macro_rules! json {
    ($($tokens:tt)*) => {
        $crate::Value::Null
    };
}
